#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diag.hpp"
#include "analysis/lint.hpp"
#include "obs/json.hpp"

// Both directories are provided by tests/CMakeLists.txt.
#ifndef DPMA_SPECS_DIR
#error "DPMA_SPECS_DIR must point at the shipped specs/ directory"
#endif
#ifndef DPMA_LINT_FIXTURE_DIR
#error "DPMA_LINT_FIXTURE_DIR must point at tests/fixtures/lint"
#endif
#ifndef DPMA_ANALYSIS_FIXTURE_DIR
#error "DPMA_ANALYSIS_FIXTURE_DIR must point at tests/fixtures/analysis"
#endif

namespace dpma::analysis {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// "code @ line:col" — the canonical key both for `// expect:` annotations
/// and for emitted diagnostics, so mismatches print side by side.
std::string key(const std::string& code, int line, int column) {
    return code + " @ " + std::to_string(line) + ":" + std::to_string(column);
}

/// Extracts the `// expect: <code> @ <line>:<col>` annotations of a fixture.
std::vector<std::string> expectations(const std::string& text) {
    std::vector<std::string> out;
    std::istringstream lines(text);
    std::string line;
    const std::string marker = "// expect: ";
    while (std::getline(lines, line)) {
        const std::size_t at = line.find(marker);
        if (at == std::string::npos) continue;
        std::string spec = line.substr(at + marker.size());
        while (!spec.empty() && (spec.back() == '\r' || spec.back() == ' ')) spec.pop_back();
        out.push_back(spec);
    }
    return out;
}

std::vector<std::string> diagnostic_keys(const LintResult& result) {
    std::vector<std::string> out;
    for (const Diagnostic& d : result.diagnostics) {
        out.push_back(key(code_name(d.code), d.span.loc.line, d.span.loc.column));
    }
    return out;
}

/// Lints one fixture file: .aem on its own, .msr against the clean host.
LintResult lint_fixture(const fs::path& path) {
    if (path.extension() == ".msr") {
        const fs::path host = fs::path(DPMA_LINT_FIXTURE_DIR) / "measure_host.aem";
        return lint_text(read_file(host), host.string(), read_file(path), path.string());
    }
    return lint_text(read_file(path), path.string());
}

std::vector<fs::path> fixture_files() {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(DPMA_LINT_FIXTURE_DIR)) {
        const fs::path& path = entry.path();
        if (path.filename() == "measure_host.aem") continue;
        if (path.extension() == ".aem" || path.extension() == ".msr") files.push_back(path);
    }
    std::sort(files.begin(), files.end());
    EXPECT_FALSE(files.empty());
    return files;
}

// --- golden lint-clean: every shipped specification -------------------------

struct SpecPair {
    const char* spec;
    const char* measures;  // nullptr = model only
};

const SpecPair kShippedSpecs[] = {
    {"rpc_untimed.aem", nullptr},
    {"rpc_revised_markov.aem", "rpc_measures.msr"},
    {"rpc_general.aem", "rpc_measures.msr"},
    {"disk_markov.aem", "disk_measures.msr"},
    {"streaming_markov.aem", nullptr},
};

TEST(LintGolden, ShippedSpecificationsAreLintClean) {
    for (const SpecPair& pair : kShippedSpecs) {
        const fs::path spec = fs::path(DPMA_SPECS_DIR) / pair.spec;
        LintResult result;
        if (pair.measures == nullptr) {
            result = lint_text(read_file(spec), spec.string());
        } else {
            const fs::path measures = fs::path(DPMA_SPECS_DIR) / pair.measures;
            result = lint_text(read_file(spec), spec.string(), read_file(measures),
                               measures.string());
        }
        EXPECT_TRUE(result.clean())
            << pair.spec << " is not lint-clean:\n" << render_text(result.diagnostics);
    }
}

TEST(LintGolden, MeasureHostFixtureIsLintClean) {
    const fs::path host = fs::path(DPMA_LINT_FIXTURE_DIR) / "measure_host.aem";
    const LintResult result = lint_text(read_file(host), host.string());
    EXPECT_TRUE(result.clean()) << render_text(result.diagnostics);
}

// --- negative fixtures -------------------------------------------------------

TEST(LintFixtures, EachFixtureProducesExactlyItsExpectedDiagnostics) {
    for (const fs::path& path : fixture_files()) {
        std::vector<std::string> expected = expectations(read_file(path));
        EXPECT_FALSE(expected.empty()) << path << " has no // expect: annotations";
        std::vector<std::string> actual = diagnostic_keys(lint_fixture(path));
        std::sort(expected.begin(), expected.end());
        std::sort(actual.begin(), actual.end());
        EXPECT_EQ(actual, expected) << "diagnostics of " << path;
    }
}

TEST(LintFixtures, EveryDiagnosticCodeHasANegativeFixture) {
    std::set<std::string> covered;
    for (const fs::path& path : fixture_files()) {
        for (const std::string& spec : expectations(read_file(path))) {
            covered.insert(spec.substr(0, spec.find(' ')));
        }
    }
    // The flow-engine codes live in their own fixture directory (exercised
    // end-to-end by flow_test); here they only feed the coverage census.
    for (const auto& entry : fs::directory_iterator(DPMA_ANALYSIS_FIXTURE_DIR)) {
        if (entry.path().extension() != ".aem") continue;
        for (const std::string& spec : expectations(read_file(entry.path()))) {
            covered.insert(spec.substr(0, spec.find(' ')));
        }
    }
    for (const Code code : all_codes()) {
        EXPECT_TRUE(covered.count(code_name(code)))
            << "no fixture exercises [" << code_name(code) << "]";
    }
    EXPECT_EQ(covered.size(), code_count());
}

TEST(LintFixtures, DiagnosticsCarrySpansSeveritiesAndFiles) {
    for (const fs::path& path : fixture_files()) {
        const LintResult result = lint_fixture(path);
        for (const Diagnostic& d : result.diagnostics) {
            EXPECT_EQ(d.severity, code_severity(d.code));
            EXPECT_GE(d.span.loc.line, 1) << code_name(d.code) << " in " << path;
            EXPECT_GE(d.span.loc.column, 1) << code_name(d.code) << " in " << path;
            EXPECT_FALSE(d.span.file.empty());
            EXPECT_FALSE(d.message.empty());
            for (const Note& note : d.notes) {
                EXPECT_FALSE(note.message.empty());
                EXPECT_GE(note.span.loc.line, 1);
            }
        }
    }
}

// --- rendering ---------------------------------------------------------------

TEST(LintRender, JsonIsStrictlyValidForEveryFixture) {
    for (const fs::path& path : fixture_files()) {
        const LintResult result = lint_fixture(path);
        const std::string json = render_json(result.diagnostics);
        std::string error;
        EXPECT_TRUE(obs::json_valid(json, &error)) << path << ": " << error << "\n" << json;
        for (const Diagnostic& d : result.diagnostics) {
            EXPECT_NE(json.find(code_name(d.code)), std::string::npos);
        }
        EXPECT_NE(json.find("\"errors\""), std::string::npos);
        EXPECT_NE(json.find("\"warnings\""), std::string::npos);
    }
}

TEST(LintRender, TextRenderingIsClangStyle) {
    LintResult result = lint_text("not an aemilia spec", "bad.aem");
    ASSERT_EQ(result.diagnostics.size(), 1u);
    EXPECT_EQ(result.diagnostics[0].code, Code::ParseError);
    const std::string text = render_text(result.diagnostics);
    EXPECT_NE(text.find("bad.aem:1:1: error: "), std::string::npos) << text;
    EXPECT_NE(text.find("[parse-error]"), std::string::npos);
    EXPECT_NE(text.find("1 error(s), 0 warning(s)"), std::string::npos);
}

TEST(LintRender, EmptyDiagnosticsRenderAsEmptyTextAndValidJson) {
    EXPECT_EQ(render_text({}), "");
    std::string error;
    EXPECT_TRUE(obs::json_valid(render_json({}), &error)) << error;
}

// --- library entry points ----------------------------------------------------

TEST(LintApi, ResultCountsAndPredicates) {
    const fs::path fixture = fs::path(DPMA_LINT_FIXTURE_DIR) / "unattached_interaction.aem";
    const LintResult warnings_only = lint_fixture(fixture);
    EXPECT_TRUE(warnings_only.ok());
    EXPECT_FALSE(warnings_only.clean());
    EXPECT_EQ(warnings_only.error_count(), 0u);
    EXPECT_EQ(warnings_only.warning_count(), 2u);

    const fs::path bad = fs::path(DPMA_LINT_FIXTURE_DIR) / "sync_two_active.aem";
    const LintResult errors = lint_fixture(bad);
    EXPECT_FALSE(errors.ok());
    EXPECT_EQ(errors.error_count(), 1u);
}

TEST(LintApi, ReachabilityCanBeDisabled) {
    const fs::path fixture = fs::path(DPMA_LINT_FIXTURE_DIR) / "local_deadlock.aem";
    LintOptions options;
    options.reachability = false;
    const LintResult result = lint_text(read_file(fixture), fixture.string(), options);
    EXPECT_TRUE(result.clean()) << render_text(result.diagnostics);
}

}  // namespace
}  // namespace dpma::analysis
