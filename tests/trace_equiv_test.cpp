#include <gtest/gtest.h>

#include "bisim/equivalence.hpp"
#include "bisim/trace_equiv.hpp"
#include "core/error.hpp"
#include "lts/ops.hpp"
#include "models/rpc.hpp"
#include "models/streaming.hpp"
#include "noninterference/noninterference.hpp"

namespace dpma::bisim {
namespace {

using lts::Lts;
using lts::StateId;

Lts single_action(const char* name) {
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    m.add_transition(s0, m.action(name), s1);
    m.set_initial(s0);
    return m;
}

TEST(TraceEquiv, IdenticalSystemsAreEquivalent) {
    const Lts a = single_action("x");
    const Lts b = single_action("x");
    const auto result = weakly_trace_equivalent(a, b);
    EXPECT_TRUE(result.equivalent);
    EXPECT_TRUE(result.distinguishing_trace.empty());
}

TEST(TraceEquiv, DifferentActionsAreDistinguished) {
    const auto result = weakly_trace_equivalent(single_action("x"), single_action("y"));
    EXPECT_FALSE(result.equivalent);
    ASSERT_EQ(result.distinguishing_trace.size(), 1u);
    // Either side's unique action works as a witness.
    EXPECT_TRUE(result.distinguishing_trace[0] == "x" ||
                result.distinguishing_trace[0] == "y");
}

TEST(TraceEquiv, TauIsInvisible) {
    // tau.a vs a.
    Lts lhs;
    const StateId l0 = lhs.add_state();
    const StateId l1 = lhs.add_state();
    const StateId l2 = lhs.add_state();
    lhs.add_transition(l0, lhs.actions()->tau(), l1);
    lhs.add_transition(l1, lhs.action("a"), l2);
    lhs.set_initial(l0);
    EXPECT_TRUE(weakly_trace_equivalent(lhs, single_action("a")).equivalent);
}

TEST(TraceEquiv, BranchingStructureIsIgnored) {
    // a.(b + c) vs a.b + a.c: NOT bisimilar, but trace equivalent — the
    // canonical separation of the two equivalences.
    Lts late;
    {
        const StateId s0 = late.add_state();
        const StateId s1 = late.add_state();
        const StateId s2 = late.add_state();
        const StateId s3 = late.add_state();
        late.add_transition(s0, late.action("a"), s1);
        late.add_transition(s1, late.action("b"), s2);
        late.add_transition(s1, late.action("c"), s3);
        late.set_initial(s0);
    }
    Lts early;
    {
        const StateId s0 = early.add_state();
        const StateId s1 = early.add_state();
        const StateId s2 = early.add_state();
        const StateId s3 = early.add_state();
        const StateId s4 = early.add_state();
        early.add_transition(s0, early.action("a"), s1);
        early.add_transition(s0, early.action("a"), s2);
        early.add_transition(s1, early.action("b"), s3);
        early.add_transition(s2, early.action("c"), s4);
        early.set_initial(s0);
    }
    EXPECT_TRUE(weakly_trace_equivalent(late, early).equivalent);
    EXPECT_FALSE(strongly_bisimilar(late, early).equivalent);
    EXPECT_FALSE(weakly_bisimilar(late, early).equivalent);
}

TEST(TraceEquiv, FindsShortestDistinguishingTrace) {
    // Left: a.b.c ; right: a.b (c only after a longer detour is absent).
    Lts lhs;
    {
        StateId s = lhs.add_state();
        lhs.set_initial(s);
        for (const char* name : {"a", "b", "c"}) {
            const StateId next = lhs.add_state();
            lhs.add_transition(s, lhs.action(name), next);
            s = next;
        }
    }
    Lts rhs;
    {
        StateId s = rhs.add_state();
        rhs.set_initial(s);
        for (const char* name : {"a", "b"}) {
            const StateId next = rhs.add_state();
            rhs.add_transition(s, rhs.action(name), next);
            s = next;
        }
    }
    const auto result = weakly_trace_equivalent(lhs, rhs);
    ASSERT_FALSE(result.equivalent);
    EXPECT_TRUE(result.lhs_has_trace);
    ASSERT_EQ(result.distinguishing_trace.size(), 3u);
    EXPECT_EQ(result.distinguishing_trace[0], "a");
    EXPECT_EQ(result.distinguishing_trace[1], "b");
    EXPECT_EQ(result.distinguishing_trace[2], "c");
}

TEST(TraceEquiv, DeadlockIsInvisibleToTraces) {
    // a.b vs a.b + a.DEADLOCK: trace equivalent (prefix-closed languages
    // coincide) yet not weakly bisimilar.
    Lts safe;
    {
        const StateId s0 = safe.add_state();
        const StateId s1 = safe.add_state();
        const StateId s2 = safe.add_state();
        safe.add_transition(s0, safe.action("a"), s1);
        safe.add_transition(s1, safe.action("b"), s2);
        safe.set_initial(s0);
    }
    Lts risky;
    {
        const StateId s0 = risky.add_state();
        const StateId s1 = risky.add_state();
        const StateId s2 = risky.add_state();
        const StateId dead = risky.add_state();
        risky.add_transition(s0, risky.action("a"), s1);
        risky.add_transition(s0, risky.action("a"), dead);
        risky.add_transition(s1, risky.action("b"), s2);
        risky.set_initial(s0);
    }
    EXPECT_TRUE(weakly_trace_equivalent(safe, risky).equivalent);
    EXPECT_FALSE(weakly_bisimilar(safe, risky).equivalent);
}

TEST(TraceEquiv, PairBudgetIsEnforced) {
    const Lts a = single_action("x");
    const Lts b = single_action("x");
    EXPECT_THROW((void)weakly_trace_equivalent(a, b, 1), NumericalError);
}

TEST(Snni, SimplifiedRpcPassesTraceCheckButFailsBisimulationCheck) {
    // The headline separation: the DPM-induced deadlock of Sect. 3.1 is a
    // branching-time phenomenon.  The trace-based SNNI property is blind to
    // it; the paper's weak-bisimulation check catches it.
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::simplified_functional());
    const auto bisim_verdict = noninterference::check_dpm_transparency(
        model, models::rpc::high_action_labels(), "C");
    const auto trace_verdict = noninterference::check_dpm_trace_transparency(
        model, models::rpc::high_action_labels(), "C");
    EXPECT_FALSE(bisim_verdict.noninterfering);
    EXPECT_TRUE(trace_verdict.noninterfering);
}

TEST(Snni, RevisedRpcPassesBothChecks) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::revised_functional());
    EXPECT_TRUE(noninterference::check_dpm_transparency(
                    model, models::rpc::high_action_labels(), "C")
                    .noninterfering);
    EXPECT_TRUE(noninterference::check_dpm_trace_transparency(
                    model, models::rpc::high_action_labels(), "C")
                    .noninterfering);
}

TEST(Snni, StreamingPassesBothChecks) {
    const adl::ComposedModel model =
        models::streaming::compose(models::streaming::functional(2));
    EXPECT_TRUE(noninterference::check_dpm_transparency(
                    model, models::streaming::high_action_labels(), "C")
                    .noninterfering);
    EXPECT_TRUE(noninterference::check_dpm_trace_transparency(
                    model, models::streaming::high_action_labels(), "C")
                    .noninterfering);
}

TEST(Snni, TraceCheckStillCatchesNewLowBehaviour) {
    // A high action that unlocks a *new* low action is caught by both
    // properties (the interference is a trace, not just a deadlock).
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    const StateId s2 = m.add_state();
    m.add_transition(s0, m.action("low_a"), s1);
    m.add_transition(s0, m.action("high"), s2);
    m.add_transition(s2, m.action("low_b"), s1);
    m.set_initial(s0);
    const auto high = lts::make_action_set(m, {"high"});
    const auto low = lts::make_action_set(m, {"low_a", "low_b"});
    const auto verdict = noninterference::check_traces(m, high, low);
    EXPECT_FALSE(verdict.noninterfering);
    ASSERT_FALSE(verdict.distinguishing_trace.empty());
    EXPECT_EQ(verdict.distinguishing_trace.back(), "low_b");
}

}  // namespace
}  // namespace dpma::bisim
