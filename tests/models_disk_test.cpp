#include <gtest/gtest.h>

#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "lts/ops.hpp"
#include "models/disk.hpp"
#include "noninterference/noninterference.hpp"
#include "sim/gsmp.hpp"

namespace dpma::models::disk {
namespace {

struct Solved {
    std::vector<double> values;
    [[nodiscard]] double power() const { return values[kPower]; }
    [[nodiscard]] double completed() const { return values[kCompleted]; }
    [[nodiscard]] double energy_per_request() const {
        return values[kPower] / values[kCompleted];
    }
    /// Little's law: mean response time = mean queue length / throughput.
    [[nodiscard]] double response_time() const {
        return values[kQueueLength] / values[kCompleted];
    }
};

Solved solve(const Config& config) {
    const adl::ComposedModel model = compose(config);
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    Solved out;
    for (const adl::Measure& m : measures(config.params)) {
        out.values.push_back(ctmc::evaluate_measure(markov, model, pi, m));
    }
    return out;
}

TEST(DiskStructure, ArchitectureValidates) {
    EXPECT_NO_THROW(adl::validate(build(functional())));
    EXPECT_NO_THROW(adl::validate(build(markovian(500.0, true))));
}

TEST(DiskStructure, ModelsAreDeadlockFree) {
    EXPECT_TRUE(lts::deadlock_states(compose(functional()).graph).empty());
    EXPECT_TRUE(lts::deadlock_states(compose(markovian(500.0, true)).graph).empty());
    EXPECT_TRUE(lts::deadlock_states(compose(markovian(0.0, true)).graph).empty());
}

TEST(DiskNoninterference, IdleTimeoutDpmIsTransparentToTheSink) {
    const adl::ComposedModel model = compose(functional());
    const auto verdict = noninterference::check_dpm_transparency(
        model, high_action_labels(), "SINK");
    EXPECT_TRUE(verdict.noninterfering);
}

TEST(DiskMarkov, SolvableAndConservative) {
    const Solved s = solve(markovian(500.0, true));
    // Flow conservation: everything issued is eventually served or dropped.
    EXPECT_NEAR(s.values[kIssued], s.values[kCompleted] + s.values[kDropped], 1e-9);
    EXPECT_GT(s.completed(), 0.0);
}

TEST(DiskMarkov, DpmSavesPowerOnBurstyWorkloads) {
    const Solved with = solve(markovian(500.0, true));
    const Solved without = solve(markovian(500.0, false));
    EXPECT_LT(with.power(), without.power());
}

TEST(DiskMarkov, SleepingCostsResponseTime) {
    const Solved with = solve(markovian(200.0, true));
    const Solved without = solve(markovian(200.0, false));
    EXPECT_GT(with.response_time(), without.response_time());
}

TEST(DiskMarkov, ShorterTimeoutSleepsMore) {
    const auto sleep_fraction = [](double timeout) {
        const adl::ComposedModel model = compose(markovian(timeout, true));
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto pi = ctmc::steady_state(markov.chain);
        return ctmc::state_probability(markov, model, pi,
                                       adl::InStatePredicate{"D", "Sleeping_Disk"});
    };
    EXPECT_GT(sleep_fraction(100.0), sleep_fraction(1000.0));
}

TEST(DiskMarkov, BreakEvenTimeHasTheExpectedMagnitude) {
    const Params p;
    // T_be = 1600 * (3.0 - 0.9) / (0.9 - 0.13) ~ 4363 ms.
    EXPECT_NEAR(p.break_even_time(), 1600.0 * 2.1 / 0.77, 1e-9);
}

TEST(DiskMarkov, QueueLengthMeasureIsWithinCapacity) {
    const Solved s = solve(markovian(500.0, true));
    EXPECT_GE(s.values[kQueueLength], 0.0);
    EXPECT_LE(s.values[kQueueLength], 8.0);
}

TEST(DiskGeneral, SimulatesAndAgreesWithMarkovOnExponentialCopy) {
    // Validation in the Sect. 5.1 style for the third case study.
    const Config config = markovian(500.0, true);
    adl::ComposedModel sim_model = compose(config);
    for (lts::StateId s = 0; s < sim_model.graph.num_states(); ++s) {
        const auto out = sim_model.graph.out(s);
        for (std::size_t k = 0; k < out.size(); ++k) {
            if (const auto* e = std::get_if<lts::RateExp>(&out[k].rate)) {
                sim_model.graph.set_rate(s, k,
                                         lts::RateGeneral{Dist::exponential(e->rate)});
            }
        }
    }
    const sim::Simulator simulator(sim_model, measures(config.params));
    sim::SimOptions options;
    options.warmup = 20000.0;
    options.horizon = 400000.0;
    options.seed = 31;
    const auto estimates = sim::simulate_replications(simulator, options, 10, 0.90);

    const Solved exact = solve(config);
    EXPECT_NEAR(estimates[kPower].mean, exact.power(),
                6 * estimates[kPower].half_width + 0.02 * exact.power());
    EXPECT_NEAR(estimates[kCompleted].mean, exact.completed(),
                6 * estimates[kCompleted].half_width + 0.02 * exact.completed());
}

TEST(DiskGeneral, DeterministicTimersShowThresholdBehaviour) {
    // With deterministic timers, a timeout longer than the burst gaps but
    // shorter than the quiet period sleeps once per quiet period only.
    const adl::ComposedModel model = compose(general(500.0, true));
    const sim::Simulator simulator(model, measures(Params{}));
    sim::SimOptions options;
    options.warmup = 10000.0;
    options.horizon = 200000.0;
    options.seed = 17;
    const sim::RunResult run = simulator.run(options);
    EXPECT_GT(run.values[kCompleted], 0.0);
    EXPECT_LT(run.values[kPower], 2.5);  // strictly below always-active
}

}  // namespace
}  // namespace dpma::models::disk
