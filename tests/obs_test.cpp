#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/solve.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "sim/batch_means.hpp"

namespace dpma {
namespace {

// ---------------------------------------------------------------- logging

TEST(ObsLog, ParsesLevels) {
    obs::LogLevel level = obs::LogLevel::Error;
    EXPECT_TRUE(obs::parse_log_level("warn", &level));
    EXPECT_EQ(level, obs::LogLevel::Warn);
    EXPECT_TRUE(obs::parse_log_level("debug", &level));
    EXPECT_EQ(level, obs::LogLevel::Debug);
    EXPECT_TRUE(obs::parse_log_level("error", &level));
    EXPECT_EQ(level, obs::LogLevel::Error);
    EXPECT_TRUE(obs::parse_log_level("info", &level));
    EXPECT_EQ(level, obs::LogLevel::Info);

    level = obs::LogLevel::Warn;
    EXPECT_FALSE(obs::parse_log_level("loud", &level));
    EXPECT_FALSE(obs::parse_log_level("WARN", &level));
    EXPECT_FALSE(obs::parse_log_level("", &level));
    EXPECT_EQ(level, obs::LogLevel::Warn);  // untouched on failure
}

TEST(ObsLog, LevelGatesMessages) {
    const obs::LogLevel before = obs::log_level();
    obs::set_log_level(obs::LogLevel::Info);
    EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Error));
    EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Info));
    EXPECT_FALSE(obs::log_enabled(obs::LogLevel::Debug));
    obs::set_log_level(before);
}

// ------------------------------------------------------------------- JSON

TEST(ObsJson, QuotesEscapes) {
    EXPECT_EQ(obs::json_quote("plain"), "\"plain\"");
    EXPECT_EQ(obs::json_quote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(obs::json_quote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(obs::json_quote("a\nb\tc"), "\"a\\nb\\tc\"");
    EXPECT_EQ(obs::json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(ObsJson, NumbersRoundTripAndNonFiniteBecomesNull) {
    EXPECT_EQ(obs::json_number(0.0), "0");
    const std::string third = obs::json_number(1.0 / 3.0);
    EXPECT_DOUBLE_EQ(std::stod(third), 1.0 / 3.0);
    EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(obs::json_number(std::nan("")), "null");
}

TEST(ObsJson, ValidatorAcceptsValidDocuments) {
    for (const char* text :
         {"{}", "[]", "null", "true", "-1.5e-3", "\"a\\u00e9\"",
          R"({"a": [1, 2, {"b": null}], "c": "x\n"})"}) {
        std::string error;
        EXPECT_TRUE(obs::json_valid(text, &error)) << text << ": " << error;
    }
}

TEST(ObsJson, ValidatorRejectsInvalidDocuments) {
    for (const char* text :
         {"", "{", "[1,]", "{\"a\":}", "{'a': 1}", "01", "nul", "[1] trailing",
          "\"unterminated", "{\"a\" 1}", "[1 2]"}) {
        std::string error;
        EXPECT_FALSE(obs::json_valid(text, &error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

// ---------------------------------------------------------------- metrics

TEST(ObsMetrics, CountersGaugesHistograms) {
    obs::Counter& c = obs::counter("test.obs.counter");
    const std::uint64_t base = c.value();
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), base + 5);
    EXPECT_EQ(&c, &obs::counter("test.obs.counter"));  // stable reference

    obs::gauge("test.obs.gauge").set(2.5);
    EXPECT_DOUBLE_EQ(obs::gauge("test.obs.gauge").value(), 2.5);

    obs::Histogram& h = obs::histogram("test.obs.histogram");
    h.reset();
    h.observe(1.0);
    h.observe(3.0);
    const obs::Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 2u);
    EXPECT_DOUBLE_EQ(snap.sum, 4.0);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 3.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 2.0);
}

TEST(ObsMetrics, JsonDumpIsValidAndComplete) {
    obs::counter("test.obs.dump \"quoted\"").add();
    obs::gauge("test.obs.dump_gauge").set(1.0);
    obs::histogram("test.obs.dump_hist").observe(7.0);
    const std::string json = obs::metrics_json();
    std::string error;
    EXPECT_TRUE(obs::json_valid(json, &error)) << error;
    EXPECT_NE(json.find("test.obs.dump \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("test.obs.dump_gauge"), std::string::npos);
    EXPECT_NE(json.find("test.obs.dump_hist"), std::string::npos);

    const std::string text = obs::metrics_text();
    EXPECT_NE(text.find("test.obs.dump_gauge = 1"), std::string::npos);
}

TEST(ObsMetrics, CountersAreThreadSafe) {
    obs::Counter& c = obs::counter("test.obs.mt_counter");
    const std::uint64_t base = c.value();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < 10000; ++i) c.add();
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(c.value(), base + 40000);
}

// Log-spaced bins (10 per decade): a quantile estimate is the geometric
// midpoint of its bin, so it can be off by at most the bin width factor
// 10^(1/10) ~ 1.26 on either side — that factor is the test tolerance.
TEST(ObsMetrics, HistogramQuantilesTrackPercentilesWithinBinResolution) {
    obs::Histogram& h = obs::histogram("test.obs.quantiles");
    h.reset();
    for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
    const obs::Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.count, 1000u);
    const double factor = std::pow(10.0, 0.1);
    for (const auto& [q, expected] :
         {std::pair{0.50, 500.0}, {0.90, 900.0}, {0.99, 990.0}}) {
        const double estimate = snap.quantile(q);
        EXPECT_GE(estimate, expected / factor) << "q=" << q;
        EXPECT_LE(estimate, expected * factor) << "q=" << q;
    }
    // Extremes clamp to the exact observed min/max.
    EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1000.0);
}

TEST(ObsMetrics, HistogramQuantilesHandleOutOfRangeAndEmpty) {
    obs::Histogram& h = obs::histogram("test.obs.quantile_edges");
    h.reset();
    EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);  // empty
    h.observe(1e-12);  // underflow bin
    h.observe(1e15);   // overflow bin
    const obs::Histogram::Snapshot snap = h.snapshot();
    EXPECT_DOUBLE_EQ(snap.quantile(0.25), 1e-12);
    EXPECT_DOUBLE_EQ(snap.quantile(0.99), 1e15);
}

TEST(ObsMetrics, JsonDumpCarriesHistogramPercentiles) {
    obs::Histogram& h = obs::histogram("test.obs.pct_dump");
    h.reset();
    for (int i = 0; i < 100; ++i) h.observe(5.0);
    const std::string json = obs::metrics_json();
    std::string error;
    EXPECT_TRUE(obs::json_valid(json, &error)) << error;
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p90\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    const obs::Json doc = obs::json_parse(json);
    const obs::Json* hist = doc.find("histograms");
    ASSERT_NE(hist, nullptr);
    const obs::Json* entry = hist->find("test.obs.pct_dump");
    ASSERT_NE(entry, nullptr);
    // Every sample is 5.0: the bin midpoint clamps to the min=max=5 range.
    EXPECT_DOUBLE_EQ(entry->number_at("p50"), 5.0);
    EXPECT_DOUBLE_EQ(entry->number_at("p99"), 5.0);
}

// ------------------------------------------------------------- JSON parser

TEST(ObsJsonParse, BuildsTheDocumentTree) {
    const obs::Json doc = obs::json_parse(
        R"({"name": "r\u00e9sum\u00e9", "n": -2.5e2, "flag": true,)"
        R"( "list": [1, "two", null], "nested": {"deep": {"x": 9}}})");
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.string_at("name"), "r\xc3\xa9sum\xc3\xa9");
    EXPECT_DOUBLE_EQ(doc.number_at("n"), -250.0);
    const obs::Json* flag = doc.find("flag");
    ASSERT_NE(flag, nullptr);
    EXPECT_TRUE(flag->boolean);
    const obs::Json* list = doc.find("list");
    ASSERT_TRUE(list != nullptr && list->is_array());
    ASSERT_EQ(list->array.size(), 3u);
    EXPECT_DOUBLE_EQ(list->array[0].number, 1.0);
    EXPECT_EQ(list->array[1].string, "two");
    EXPECT_TRUE(list->array[2].is_null());
    const obs::Json* nested = doc.find("nested");
    ASSERT_NE(nested, nullptr);
    EXPECT_DOUBLE_EQ(nested->find("deep")->number_at("x"), 9.0);
    // Missing keys fall back instead of throwing.
    EXPECT_EQ(doc.find("absent"), nullptr);
    EXPECT_DOUBLE_EQ(doc.number_at("absent", -1.0), -1.0);
    EXPECT_EQ(doc.string_at("absent", "d"), "d");
}

TEST(ObsJsonParse, AgreesWithTheValidator) {
    for (const char* text :
         {"", "{", "[1,]", "{\"a\":}", "01", "[1] trailing", "\"\\u12g4\"",
          "nul"}) {
        EXPECT_THROW((void)obs::json_parse(text), Error) << text;
        EXPECT_FALSE(obs::json_valid(text)) << text;
    }
    // Surrogate pair -> one 4-byte UTF-8 code point.
    EXPECT_EQ(obs::json_parse(R"("\ud83d\ude00")").string, "\xf0\x9f\x98\x80");
}

TEST(ObsJsonParse, RoundTripsMetricsAndResultSets) {
    exp::ResultSet set("roundtrip", {"rate"}, {"m"});
    exp::Point point;
    point.coords = {{"rate", 0.25}};
    exp::PointResult result;
    result.values = {4.0};
    set.add(std::move(point), std::move(result));
    const obs::Json doc = obs::json_parse(set.json());
    EXPECT_EQ(doc.string_at("experiment"), "roundtrip");
    const obs::Json* points = doc.find("points");
    ASSERT_TRUE(points != nullptr && points->is_array());
    ASSERT_EQ(points->array.size(), 1u);
    EXPECT_DOUBLE_EQ(points->array[0].find("values")->number_at("m"), 4.0);
}

// -------------------------------------------------------------- resources

TEST(ObsResource, SamplesPlausibleUsage) {
    const obs::ResourceUsage usage = obs::sample_resources();
    EXPECT_TRUE(std::string(usage.source) == "procfs" ||
                std::string(usage.source) == "getrusage" ||
                std::string(usage.source) == "none")
        << usage.source;
    EXPECT_GE(usage.cpu_user_s, 0.0);
    EXPECT_GE(usage.cpu_system_s, 0.0);
#if defined(__linux__)
    // A running test process has touched memory and faulted pages.
    EXPECT_GT(usage.peak_rss_kb, 0u);
    EXPECT_GT(usage.minor_faults + usage.major_faults, 0u);
#endif
}

// ------------------------------------------------------------- run records

TEST(ObsRunReport, EmitsTheDocumentedSchema) {
    obs::RunReport report("unit_test");
    report.set_args({"unit_test", "--flag"});
    report.add_series(R"({"experiment": "s1", "points": []})");
    const std::string json = report.json();
    std::string error;
    ASSERT_TRUE(obs::json_valid(json, &error)) << error;
    const obs::Json doc = obs::json_parse(json);
    EXPECT_EQ(doc.string_at("schema"), "dpma-run-report/1");
    EXPECT_EQ(doc.string_at("tool"), "unit_test");
    EXPECT_GE(doc.number_at("wall_s"), 0.0);
    for (const char* key : {"git_sha", "build_type", "resource_source"}) {
        EXPECT_FALSE(doc.string_at(key).empty()) << key;
    }
    for (const char* key : {"env", "metrics", "spans", "series", "peak_rss_kb",
                            "cpu_user_s", "minor_faults", "major_faults"}) {
        EXPECT_NE(doc.find(key), nullptr) << key;
    }
    const obs::Json* args = doc.find("args");
    ASSERT_TRUE(args != nullptr && args->is_array());
    EXPECT_EQ(args->array.size(), 2u);
    const obs::Json* series = doc.find("series");
    ASSERT_TRUE(series != nullptr && series->is_array());
    ASSERT_EQ(series->array.size(), 1u);
    EXPECT_EQ(series->array[0].string_at("experiment"), "s1");
}

TEST(ObsRunReport, RejectsInvalidSeriesJson) {
    obs::RunReport report("unit_test");
    EXPECT_THROW(report.add_series("{broken"), Error);
    EXPECT_THROW(report.add_series(""), Error);
    EXPECT_NO_THROW(report.add_series("{}"));
}

TEST(ObsRunReport, ReportPathHonoursEnvOverrides) {
    unsetenv("DPMA_REPORT");
    EXPECT_EQ(obs::report_path("fig3"), "BENCH_fig3.json");
    setenv("DPMA_REPORT", "custom/path.json", 1);
    EXPECT_EQ(obs::report_path("fig3"), "custom/path.json");
    setenv("DPMA_REPORT", "0", 1);
    EXPECT_EQ(obs::report_path("fig3"), "");
    setenv("DPMA_REPORT", "", 1);
    EXPECT_EQ(obs::report_path("fig3"), "");
    unsetenv("DPMA_REPORT");
}

// ---------------------------------------------------------------- tracing

TEST(ObsTrace, SpansProduceValidChromeTraceJson) {
    obs::clear_trace();
    obs::set_tracing(true);
    {
        DPMA_NAMED_SPAN(outer, "test.outer", "test");
        outer.arg("states", 42.0);
        DPMA_SPAN("test.inner", "test");
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 50; ++i) {
                DPMA_SPAN("test.worker", "test");
            }
        });
    }
    for (std::thread& t : threads) t.join();
    obs::set_tracing(false);

#if !defined(DPMA_OBS_DISABLED)
    EXPECT_EQ(obs::trace_size(), 2u + 4u * 50u);
#endif
    const std::string json = obs::trace_json();
    std::string error;
    EXPECT_TRUE(obs::json_valid(json, &error)) << error;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
#if !defined(DPMA_OBS_DISABLED)
    EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"states\""), std::string::npos);

    const std::vector<obs::SpanStats> summary = obs::span_summary();
    bool found_worker = false;
    for (const obs::SpanStats& s : summary) {
        if (s.name == "test.worker") {
            found_worker = true;
            EXPECT_EQ(s.count, 200u);
        }
    }
    EXPECT_TRUE(found_worker);
#endif
    obs::clear_trace();
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
    obs::clear_trace();
    obs::set_tracing(false);
    for (int i = 0; i < 100; ++i) {
        DPMA_SPAN("test.disabled", "test");
    }
    EXPECT_EQ(obs::trace_size(), 0u);
}

// A disabled span must stay near-zero cost: the constructor is one relaxed
// atomic load and the destructor one branch.  The bound is deliberately
// loose (1 microsecond averaged over 200k spans) so the test never flakes
// on loaded CI machines while still catching accidental work on the
// disabled path (e.g. an unconditional clock read).
TEST(ObsTrace, DisabledSpanOverheadIsBounded) {
    obs::set_tracing(false);
    constexpr int kIterations = 200000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIterations; ++i) {
        DPMA_SPAN("test.overhead", "test");
    }
    const std::chrono::duration<double, std::micro> elapsed =
        std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed.count() / kIterations, 1.0);
}

// ------------------------------------------------------------ diagnostics

TEST(ObsDiagnostics, IterativeSolveRecordsResidualHistory) {
    ctmc::Ctmc chain(6);
    for (ctmc::TangibleId i = 0; i + 1 < 6; ++i) {
        chain.add_rate(i, i + 1, 2.0);
        chain.add_rate(i + 1, i, 3.0);
    }
    ctmc::SolveDiagnostics diagnostics;
    ctmc::SolveOptions options;
    options.diagnostics = &diagnostics;
    const auto pi = ctmc::steady_state_gauss_seidel(chain, options);
    ASSERT_EQ(pi.size(), 6u);

    EXPECT_EQ(diagnostics.method, "gauss_seidel");
    EXPECT_EQ(diagnostics.states, 6u);
    EXPECT_GT(diagnostics.iterations, 0u);
    EXPECT_FALSE(diagnostics.residuals.empty());
    EXPECT_LE(diagnostics.final_residual, options.tolerance);

    std::string error;
    EXPECT_TRUE(obs::json_valid(diagnostics.json(), &error)) << error;
    EXPECT_NE(diagnostics.json().find("\"gauss_seidel\""), std::string::npos);
}

TEST(ObsDiagnostics, ResidualHistoryIsThinnedNotUnbounded) {
    ctmc::SolveDiagnostics diagnostics;
    for (int i = 0; i < 100000; ++i) {
        diagnostics.record_residual(1.0 / (1.0 + i));
    }
    EXPECT_LE(diagnostics.residuals.size(), 2048u);
    EXPECT_GE(diagnostics.residual_stride, 2u);
    std::string error;
    EXPECT_TRUE(obs::json_valid(diagnostics.json(), &error)) << error;
}

TEST(ObsDiagnostics, DenseSolveReportsGth) {
    ctmc::Ctmc chain(3);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(1, 2, 1.0);
    chain.add_rate(2, 0, 1.0);
    ctmc::SolveDiagnostics diagnostics;
    ctmc::SolveOptions options;
    options.diagnostics = &diagnostics;
    (void)ctmc::steady_state(chain, options);
    EXPECT_EQ(diagnostics.method, "gth");
    EXPECT_EQ(diagnostics.states, 3u);
    EXPECT_EQ(diagnostics.iterations, 0u);
    EXPECT_TRUE(diagnostics.residuals.empty());
}

TEST(ObsDiagnostics, ConvergenceJsonIsValid) {
    sim::BatchEstimate estimate;
    estimate.mean = 0.5;
    estimate.half_width = 0.01;
    estimate.lag1_autocorrelation = -0.1;
    estimate.cumulative_half_widths = {0.08, 0.04, 0.02, 0.01};
    const std::string json = sim::convergence_json({estimate}, {"util \"disk\""});
    std::string error;
    EXPECT_TRUE(obs::json_valid(json, &error)) << error;
    EXPECT_NE(json.find("half_width_trajectory"), std::string::npos);
    EXPECT_NE(json.find("\\\"disk\\\""), std::string::npos);
}

// ------------------------------------------------- ResultSet JSON escaping

TEST(ResultSetJson, EscapesNamesAndEmbedsDiagnostics) {
    exp::ResultSet set("sweep \"q\"\n", {"rate"}, {"util\\path"});
    exp::Point point;
    point.coords = {{"rate", 0.5}};
    exp::PointResult result;
    result.values = {1.25};
    result.half_widths = {0.5};
    result.diagnostics = "{\"solver\": {\"method\": \"gth\"}}";
    set.add(std::move(point), std::move(result));

    const std::string json = set.json();
    std::string error;
    EXPECT_TRUE(obs::json_valid(json, &error)) << error;
    EXPECT_NE(json.find("\"sweep \\\"q\\\"\\n\""), std::string::npos);
    EXPECT_NE(json.find("\"util\\\\path\""), std::string::npos);
    EXPECT_NE(json.find("\"diagnostics\": {\"solver\""), std::string::npos);
}

TEST(ResultSetJson, OmitsDiagnosticsWhenEmpty) {
    exp::ResultSet set("plain", {"rate"}, {"m"});
    exp::Point point;
    point.coords = {{"rate", 1.0}};
    exp::PointResult result;
    result.values = {2.0};
    set.add(std::move(point), std::move(result));
    const std::string json = set.json();
    std::string error;
    EXPECT_TRUE(obs::json_valid(json, &error)) << error;
    EXPECT_EQ(json.find("diagnostics"), std::string::npos);
}

}  // namespace
}  // namespace dpma
