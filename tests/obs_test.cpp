#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmc/solve.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/batch_means.hpp"

namespace dpma {
namespace {

// ---------------------------------------------------------------- logging

TEST(ObsLog, ParsesLevels) {
    obs::LogLevel level = obs::LogLevel::Error;
    EXPECT_TRUE(obs::parse_log_level("warn", &level));
    EXPECT_EQ(level, obs::LogLevel::Warn);
    EXPECT_TRUE(obs::parse_log_level("debug", &level));
    EXPECT_EQ(level, obs::LogLevel::Debug);
    EXPECT_TRUE(obs::parse_log_level("error", &level));
    EXPECT_EQ(level, obs::LogLevel::Error);
    EXPECT_TRUE(obs::parse_log_level("info", &level));
    EXPECT_EQ(level, obs::LogLevel::Info);

    level = obs::LogLevel::Warn;
    EXPECT_FALSE(obs::parse_log_level("loud", &level));
    EXPECT_FALSE(obs::parse_log_level("WARN", &level));
    EXPECT_FALSE(obs::parse_log_level("", &level));
    EXPECT_EQ(level, obs::LogLevel::Warn);  // untouched on failure
}

TEST(ObsLog, LevelGatesMessages) {
    const obs::LogLevel before = obs::log_level();
    obs::set_log_level(obs::LogLevel::Info);
    EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Error));
    EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Info));
    EXPECT_FALSE(obs::log_enabled(obs::LogLevel::Debug));
    obs::set_log_level(before);
}

// ------------------------------------------------------------------- JSON

TEST(ObsJson, QuotesEscapes) {
    EXPECT_EQ(obs::json_quote("plain"), "\"plain\"");
    EXPECT_EQ(obs::json_quote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(obs::json_quote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(obs::json_quote("a\nb\tc"), "\"a\\nb\\tc\"");
    EXPECT_EQ(obs::json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(ObsJson, NumbersRoundTripAndNonFiniteBecomesNull) {
    EXPECT_EQ(obs::json_number(0.0), "0");
    const std::string third = obs::json_number(1.0 / 3.0);
    EXPECT_DOUBLE_EQ(std::stod(third), 1.0 / 3.0);
    EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(obs::json_number(std::nan("")), "null");
}

TEST(ObsJson, ValidatorAcceptsValidDocuments) {
    for (const char* text :
         {"{}", "[]", "null", "true", "-1.5e-3", "\"a\\u00e9\"",
          R"({"a": [1, 2, {"b": null}], "c": "x\n"})"}) {
        std::string error;
        EXPECT_TRUE(obs::json_valid(text, &error)) << text << ": " << error;
    }
}

TEST(ObsJson, ValidatorRejectsInvalidDocuments) {
    for (const char* text :
         {"", "{", "[1,]", "{\"a\":}", "{'a': 1}", "01", "nul", "[1] trailing",
          "\"unterminated", "{\"a\" 1}", "[1 2]"}) {
        std::string error;
        EXPECT_FALSE(obs::json_valid(text, &error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

// ---------------------------------------------------------------- metrics

TEST(ObsMetrics, CountersGaugesHistograms) {
    obs::Counter& c = obs::counter("test.obs.counter");
    const std::uint64_t base = c.value();
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), base + 5);
    EXPECT_EQ(&c, &obs::counter("test.obs.counter"));  // stable reference

    obs::gauge("test.obs.gauge").set(2.5);
    EXPECT_DOUBLE_EQ(obs::gauge("test.obs.gauge").value(), 2.5);

    obs::Histogram& h = obs::histogram("test.obs.histogram");
    h.reset();
    h.observe(1.0);
    h.observe(3.0);
    const obs::Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 2u);
    EXPECT_DOUBLE_EQ(snap.sum, 4.0);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 3.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 2.0);
}

TEST(ObsMetrics, JsonDumpIsValidAndComplete) {
    obs::counter("test.obs.dump \"quoted\"").add();
    obs::gauge("test.obs.dump_gauge").set(1.0);
    obs::histogram("test.obs.dump_hist").observe(7.0);
    const std::string json = obs::metrics_json();
    std::string error;
    EXPECT_TRUE(obs::json_valid(json, &error)) << error;
    EXPECT_NE(json.find("test.obs.dump \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("test.obs.dump_gauge"), std::string::npos);
    EXPECT_NE(json.find("test.obs.dump_hist"), std::string::npos);

    const std::string text = obs::metrics_text();
    EXPECT_NE(text.find("test.obs.dump_gauge = 1"), std::string::npos);
}

TEST(ObsMetrics, CountersAreThreadSafe) {
    obs::Counter& c = obs::counter("test.obs.mt_counter");
    const std::uint64_t base = c.value();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < 10000; ++i) c.add();
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(c.value(), base + 40000);
}

// ---------------------------------------------------------------- tracing

TEST(ObsTrace, SpansProduceValidChromeTraceJson) {
    obs::clear_trace();
    obs::set_tracing(true);
    {
        DPMA_NAMED_SPAN(outer, "test.outer", "test");
        outer.arg("states", 42.0);
        DPMA_SPAN("test.inner", "test");
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 50; ++i) {
                DPMA_SPAN("test.worker", "test");
            }
        });
    }
    for (std::thread& t : threads) t.join();
    obs::set_tracing(false);

#if !defined(DPMA_OBS_DISABLED)
    EXPECT_EQ(obs::trace_size(), 2u + 4u * 50u);
#endif
    const std::string json = obs::trace_json();
    std::string error;
    EXPECT_TRUE(obs::json_valid(json, &error)) << error;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
#if !defined(DPMA_OBS_DISABLED)
    EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"states\""), std::string::npos);

    const std::vector<obs::SpanStats> summary = obs::span_summary();
    bool found_worker = false;
    for (const obs::SpanStats& s : summary) {
        if (s.name == "test.worker") {
            found_worker = true;
            EXPECT_EQ(s.count, 200u);
        }
    }
    EXPECT_TRUE(found_worker);
#endif
    obs::clear_trace();
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
    obs::clear_trace();
    obs::set_tracing(false);
    for (int i = 0; i < 100; ++i) {
        DPMA_SPAN("test.disabled", "test");
    }
    EXPECT_EQ(obs::trace_size(), 0u);
}

// A disabled span must stay near-zero cost: the constructor is one relaxed
// atomic load and the destructor one branch.  The bound is deliberately
// loose (1 microsecond averaged over 200k spans) so the test never flakes
// on loaded CI machines while still catching accidental work on the
// disabled path (e.g. an unconditional clock read).
TEST(ObsTrace, DisabledSpanOverheadIsBounded) {
    obs::set_tracing(false);
    constexpr int kIterations = 200000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIterations; ++i) {
        DPMA_SPAN("test.overhead", "test");
    }
    const std::chrono::duration<double, std::micro> elapsed =
        std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed.count() / kIterations, 1.0);
}

// ------------------------------------------------------------ diagnostics

TEST(ObsDiagnostics, IterativeSolveRecordsResidualHistory) {
    ctmc::Ctmc chain(6);
    for (ctmc::TangibleId i = 0; i + 1 < 6; ++i) {
        chain.add_rate(i, i + 1, 2.0);
        chain.add_rate(i + 1, i, 3.0);
    }
    ctmc::SolveDiagnostics diagnostics;
    ctmc::SolveOptions options;
    options.diagnostics = &diagnostics;
    const auto pi = ctmc::steady_state_gauss_seidel(chain, options);
    ASSERT_EQ(pi.size(), 6u);

    EXPECT_EQ(diagnostics.method, "gauss_seidel");
    EXPECT_EQ(diagnostics.states, 6u);
    EXPECT_GT(diagnostics.iterations, 0u);
    EXPECT_FALSE(diagnostics.residuals.empty());
    EXPECT_LE(diagnostics.final_residual, options.tolerance);

    std::string error;
    EXPECT_TRUE(obs::json_valid(diagnostics.json(), &error)) << error;
    EXPECT_NE(diagnostics.json().find("\"gauss_seidel\""), std::string::npos);
}

TEST(ObsDiagnostics, ResidualHistoryIsThinnedNotUnbounded) {
    ctmc::SolveDiagnostics diagnostics;
    for (int i = 0; i < 100000; ++i) {
        diagnostics.record_residual(1.0 / (1.0 + i));
    }
    EXPECT_LE(diagnostics.residuals.size(), 2048u);
    EXPECT_GE(diagnostics.residual_stride, 2u);
    std::string error;
    EXPECT_TRUE(obs::json_valid(diagnostics.json(), &error)) << error;
}

TEST(ObsDiagnostics, DenseSolveReportsGth) {
    ctmc::Ctmc chain(3);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(1, 2, 1.0);
    chain.add_rate(2, 0, 1.0);
    ctmc::SolveDiagnostics diagnostics;
    ctmc::SolveOptions options;
    options.diagnostics = &diagnostics;
    (void)ctmc::steady_state(chain, options);
    EXPECT_EQ(diagnostics.method, "gth");
    EXPECT_EQ(diagnostics.states, 3u);
    EXPECT_EQ(diagnostics.iterations, 0u);
    EXPECT_TRUE(diagnostics.residuals.empty());
}

TEST(ObsDiagnostics, ConvergenceJsonIsValid) {
    sim::BatchEstimate estimate;
    estimate.mean = 0.5;
    estimate.half_width = 0.01;
    estimate.lag1_autocorrelation = -0.1;
    estimate.cumulative_half_widths = {0.08, 0.04, 0.02, 0.01};
    const std::string json = sim::convergence_json({estimate}, {"util \"disk\""});
    std::string error;
    EXPECT_TRUE(obs::json_valid(json, &error)) << error;
    EXPECT_NE(json.find("half_width_trajectory"), std::string::npos);
    EXPECT_NE(json.find("\\\"disk\\\""), std::string::npos);
}

// ------------------------------------------------- ResultSet JSON escaping

TEST(ResultSetJson, EscapesNamesAndEmbedsDiagnostics) {
    exp::ResultSet set("sweep \"q\"\n", {"rate"}, {"util\\path"});
    exp::Point point;
    point.coords = {{"rate", 0.5}};
    exp::PointResult result;
    result.values = {1.25};
    result.half_widths = {0.5};
    result.diagnostics = "{\"solver\": {\"method\": \"gth\"}}";
    set.add(std::move(point), std::move(result));

    const std::string json = set.json();
    std::string error;
    EXPECT_TRUE(obs::json_valid(json, &error)) << error;
    EXPECT_NE(json.find("\"sweep \\\"q\\\"\\n\""), std::string::npos);
    EXPECT_NE(json.find("\"util\\\\path\""), std::string::npos);
    EXPECT_NE(json.find("\"diagnostics\": {\"solver\""), std::string::npos);
}

TEST(ResultSetJson, OmitsDiagnosticsWhenEmpty) {
    exp::ResultSet set("plain", {"rate"}, {"m"});
    exp::Point point;
    point.coords = {{"rate", 1.0}};
    exp::PointResult result;
    result.values = {2.0};
    set.add(std::move(point), std::move(result));
    const std::string json = set.json();
    std::string error;
    EXPECT_TRUE(obs::json_valid(json, &error)) << error;
    EXPECT_EQ(json.find("diagnostics"), std::string::npos);
}

}  // namespace
}  // namespace dpma
