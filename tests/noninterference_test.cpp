#include <gtest/gtest.h>

#include "bisim/hml.hpp"
#include "bisim/hml_check.hpp"
#include "lts/lts.hpp"
#include "lts/ops.hpp"
#include "noninterference/noninterference.hpp"

namespace dpma::noninterference {
namespace {

using lts::Lts;
using lts::StateId;

/// A system where a high action changes what the low user can observe:
///   s0 -low_a-> .   and   s0 -high-> s2 -low_b-> .
/// Hiding high lets the low observer reach low_b (after a tau); removing
/// high does not.  Classic interference.
Lts interfering_system() {
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    const StateId s2 = m.add_state();
    const StateId s3 = m.add_state();
    m.add_transition(s0, m.action("low_a"), s1);
    m.add_transition(s0, m.action("high"), s2);
    m.add_transition(s2, m.action("low_b"), s3);
    m.set_initial(s0);
    return m;
}

/// The high action only causes internal rearrangement; the low view is
/// unchanged: s0 -high-> s1, both states offer exactly low_a to the same
/// continuation.
Lts transparent_system() {
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    const StateId s2 = m.add_state();
    m.add_transition(s0, m.action("high"), s1);
    m.add_transition(s0, m.action("low_a"), s2);
    m.add_transition(s1, m.action("low_a"), s2);
    m.add_transition(s2, m.action("low_a"), s2);
    m.set_initial(s0);
    return m;
}

TEST(Noninterference, DetectsInterference) {
    Lts m = interfering_system();
    const Result r = check(m, lts::make_action_set(m, {"high"}));
    EXPECT_FALSE(r.noninterfering);
    ASSERT_NE(r.formula, nullptr);
    // The diagnostic must mention the capability the restricted system lacks.
    EXPECT_NE(bisim::to_compact(r.formula).find("low_b"), std::string::npos);
}

TEST(Noninterference, AcceptsTransparentHighActions) {
    Lts m = transparent_system();
    const Result r = check(m, lts::make_action_set(m, {"high"}));
    EXPECT_TRUE(r.noninterfering);
    EXPECT_EQ(r.formula, nullptr);
}

TEST(Noninterference, ReportsStateCounts) {
    Lts m = interfering_system();
    const Result r = check(m, lts::make_action_set(m, {"high"}));
    EXPECT_EQ(r.hidden_states, 4u);     // all states reachable when hidden
    EXPECT_EQ(r.restricted_states, 2u); // s2/s3 unreachable when restricted
}

TEST(Noninterference, ObserverRelativeCheckHidesThirdParties) {
    // A "server" action distinguishes the two sides unless it is hidden as
    // non-low: s0 -high-> s1 -server-> s2 -low_a-> ...; without high the
    // low view is just low_a as well (via another path).
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    const StateId s2 = m.add_state();
    m.add_transition(s0, m.action("high"), s1);
    m.add_transition(s1, m.action("server_work"), s2);
    m.add_transition(s0, m.action("low_a"), s2);
    m.add_transition(s1, m.action("low_a"), s2);
    m.add_transition(s2, m.action("low_a"), s2);
    m.set_initial(s0);

    const auto high = lts::make_action_set(m, {"high"});
    const auto low = lts::make_action_set(m, {"low_a"});
    // Classic check fails: the hidden side exposes server_work.
    EXPECT_FALSE(check(m, high).noninterfering);
    // The observer-relative check passes: server_work is not low-visible.
    EXPECT_TRUE(check(m, high, low).noninterfering);
}

TEST(Noninterference, FormulaDistinguishesTheTwoViews) {
    Lts m = interfering_system();
    const auto high = lts::make_action_set(m, {"high"});
    const Result r = check(m, high);
    ASSERT_FALSE(r.noninterfering);
    // Re-create the two views exactly as the checker does and verify the
    // formula's verdict on both.
    const Lts hidden = lts::reachable_part(lts::hide(m, high));
    const Lts restricted = lts::reachable_part(lts::restrict_actions(m, high));
    const lts::UnionResult u = lts::disjoint_union(hidden, restricted);
    EXPECT_TRUE(bisim::satisfies(u.combined, u.initial_lhs, r.formula));
    EXPECT_FALSE(bisim::satisfies(u.combined, u.initial_rhs, r.formula));
}

}  // namespace
}  // namespace dpma::noninterference
