/// \file exp_tsan_smoke.cpp
/// Plain-main determinism smoke for the experiment engine, designed to run
/// under ThreadSanitizer (see DPMA_SANITIZE / DPMA_EXP_CORE_ONLY in the top
/// CMakeLists and the exp_tsan_nested ctest entry).  It exercises the racy
/// surface on purpose: a sweep fans points out over a pool and every point
/// fans simulation replications out over the *same* pool (nested run()),
/// all of them patching and reading shared cached models.  The program
/// fails (exit 1) when a parallel sweep is not bit-identical to the serial
/// one, so it doubles as a scheduler-independence check in plain builds.
///
/// Intentionally GTest-free: the sanitized nested build only compiles the
/// engine's own libraries.

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/run_report.hpp"

#include "adl/compose.hpp"
#include "adl/measure.hpp"
#include "battery/coupling.hpp"
#include "bisim/partition.hpp"
#include "exp/cache.hpp"
#include "exp/experiment.hpp"
#include "exp/pool.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "lts/ops.hpp"
#include "models/builder.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;

/// A two-state exponential on/off cell: the smallest model with a
/// patchable rate and a non-trivial steady state.
adl::ArchiType cell_system() {
    adl::ElemType cell;
    cell.name = "Cell_Type";
    cell.behaviors = {
        adl::BehaviorDef{"On", {}, {models::alt({models::act("work", lts::RateExp{1.0})}, "Off")}},
        adl::BehaviorDef{"Off", {}, {models::alt({models::act("rest", lts::RateExp{2.0})}, "On")}},
    };
    adl::ArchiType archi;
    archi.name = "Smoke";
    archi.elem_types = {cell};
    archi.instances = {adl::Instance{"M", "Cell_Type", {}}};
    return archi;
}

std::vector<adl::Measure> cell_measures() {
    return {
        adl::Measure{"busy", {adl::state_reward_in("M", "On", 1.0)}},
        adl::Measure{"work_freq", {adl::trans_reward("M", "work", 1.0)}},
    };
}

exp::Experiment sweep(exp::ModelCache& cache) {
    exp::Experiment experiment;
    experiment.name = "tsan_smoke";
    experiment.grid.axis(exp::Axis::linspace("work_rate", 0.5, 4.0, 6));
    experiment.measures = {"busy", "work_freq"};
    experiment.eval = [&cache](const exp::Point& point,
                               const exp::PointContext& context) {
        const auto skeleton = cache.composed(
            "cell", [] { return adl::compose(cell_system()); });
        const adl::ComposedModel patched =
            exp::with_exp_rate(*skeleton, "M", "work", point.at("work_rate"));
        const sim::Simulator simulator(patched, cell_measures());
        sim::SimOptions options;
        options.warmup = 5.0;
        options.horizon = 200.0;
        options.seed = context.seed();
        const std::vector<sim::Estimate> estimates = exp::simulate_replications(
            simulator, options, 5, 0.90, *context.pool);
        exp::PointResult result;
        for (const sim::Estimate& e : estimates) {
            result.values.push_back(e.mean);
            result.half_widths.push_back(e.half_width);
        }
        return result;
    };
    return experiment;
}

/// Battery replay determinism: a capacity sweep whose points all replay
/// trajectories from the *same* shared Simulator into KiBaM batteries
/// (battery::simulate_lifetime reads the simulator and bumps shared obs
/// instruments from every pool worker — exactly the surface TSan should
/// watch).  Point seeds come from the engine, so a parallel sweep must be
/// bit-identical to the serial one.
exp::Experiment battery_sweep(const sim::Simulator& simulator) {
    exp::Experiment experiment;
    experiment.name = "battery_smoke";
    experiment.grid.axis(exp::Axis::linspace("capacity", 8.0, 48.0, 6));
    experiment.measures = {"lifetime", "censored", "delivered", "recovered"};
    experiment.eval = [&simulator](const exp::Point& point,
                                   const exp::PointContext& context) {
        battery::BatteryParams params;
        params.kind = battery::BatteryParams::Kind::Kibam;
        params.capacity = point.at("capacity");
        params.kibam_c = 0.5;
        params.kibam_rate = 0.05;
        battery::ReplayOptions replay;
        replay.horizon = 24.0 * params.capacity;  // generous vs E[power] = 2/3
        replay.seed = context.seed();
        replay.replications = 4;
        // Pooled overload on the sweep's own (nested) pool — the parallel
        // sweep must still be bit-identical to the serial one.
        const battery::LifetimeEstimate estimate = battery::simulate_lifetime(
            simulator, 0, params, replay, *context.pool);
        exp::PointResult result;
        result.values = {estimate.mean, static_cast<double>(estimate.censored),
                         estimate.mean_delivered, estimate.mean_recovered};
        result.half_widths = {estimate.half_width, 0.0, 0.0, 0.0};
        return result;
    };
    return experiment;
}

/// Parallel-refinement determinism: the signature rounds of the dirty-block
/// refiner must be bit-identical whatever the job count, and the parallel
/// path (chunked signature computation over the shared pool) is exactly the
/// surface ThreadSanitizer should watch.  Uses a tau-heavy random LTS large
/// enough (saturated) to cross the refiner's parallel threshold.
int check_parallel_refinement() {
    std::mt19937 rng(42);
    lts::Lts m;
    const lts::ActionId tau = m.actions()->tau();
    const std::vector<lts::ActionId> visible{m.action("a"), m.action("b")};
    // 3000 states (above the refiner's 2048-state parallel threshold) with
    // forward tau edges confined to 32-state blocks: acyclic tau structure,
    // so SCC collapse keeps the full state count, while closures stay small
    // enough for a smoke test.
    constexpr std::size_t kStates = 3000;
    constexpr std::size_t kBlock = 32;
    for (std::size_t s = 0; s < kStates; ++s) m.add_state();
    std::uniform_int_distribution<lts::StateId> pick(0, kStates - 1);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (std::size_t s = 0; s + 1 < kStates; ++s) {
        const std::size_t block_end = (s / kBlock + 1) * kBlock - 1;
        if (s < block_end && coin(rng) < 0.8) {
            std::uniform_int_distribution<lts::StateId> fwd(
                static_cast<lts::StateId>(s + 1),
                static_cast<lts::StateId>(std::min(block_end, kStates - 1)));
            m.add_transition(static_cast<lts::StateId>(s), tau, fwd(rng));
        }
    }
    for (std::size_t k = 0; k < 6000; ++k) {
        m.add_transition(pick(rng), visible[coin(rng) < 0.5 ? 0 : 1], pick(rng));
    }
    m.set_initial(0);

    const lts::Lts sat = lts::saturate(lts::collapse_tau_sccs(m).collapsed);
    const bisim::RefinementResult serial = bisim::refine_strong(sat, 1);
    const bisim::RefinementResult parallel = bisim::refine_strong(sat, 4);
    if (serial.rounds != parallel.rounds) {
        std::fprintf(stderr, "FAIL: refinement rounds differ between jobs=1 and jobs=4\n");
        return 1;
    }
    std::printf("OK: refinement bit-identical across jobs counts (%zu rounds, %zu states)\n",
                serial.rounds.size(), sat.num_states());
    return 0;
}

/// The replication-parallel primitives (exp::simulate_replications,
/// exp::simulate_depletion, the pooled battery::simulate_lifetime) must be
/// bit-identical to their serial counterparts for any pool size — same
/// seeds, same sample vectors, same aggregates.
int check_pooled_primitives() {
    const adl::ComposedModel model = adl::compose(cell_system());
    const sim::Simulator simulator(model, cell_measures());
    sim::SimOptions options;
    options.warmup = 5.0;
    options.horizon = 200.0;
    options.seed = 99;
    exp::ThreadPool pool(4);

    const auto serial_reps = sim::simulate_replications(simulator, options, 8, 0.90);
    const auto pooled_reps =
        exp::simulate_replications(simulator, options, 8, 0.90, pool);
    for (std::size_t m = 0; m < serial_reps.size(); ++m) {
        if (serial_reps[m].samples != pooled_reps[m].samples ||
            serial_reps[m].mean != pooled_reps[m].mean ||
            serial_reps[m].half_width != pooled_reps[m].half_width) {
            std::fprintf(stderr, "FAIL: pooled replications differ from serial\n");
            return 1;
        }
    }

    sim::SimOptions depletion = options;
    depletion.warmup = 0.0;
    const sim::Estimate serial_dep =
        sim::simulate_depletion(simulator, 0, 20.0, depletion, 8, 0.90);
    const sim::Estimate pooled_dep =
        exp::simulate_depletion(simulator, 0, 20.0, depletion, 8, 0.90, pool);
    if (serial_dep.samples != pooled_dep.samples ||
        serial_dep.mean != pooled_dep.mean ||
        serial_dep.half_width != pooled_dep.half_width) {
        std::fprintf(stderr, "FAIL: pooled depletion differs from serial\n");
        return 1;
    }

    battery::BatteryParams params;
    params.kind = battery::BatteryParams::Kind::Kibam;
    params.capacity = 24.0;
    params.kibam_c = 0.5;
    params.kibam_rate = 0.05;
    battery::ReplayOptions replay;
    replay.horizon = 24.0 * params.capacity;
    replay.seed = 99;
    replay.replications = 8;
    const battery::LifetimeEstimate serial_life =
        battery::simulate_lifetime(simulator, 0, params, replay);
    const battery::LifetimeEstimate pooled_life =
        battery::simulate_lifetime(simulator, 0, params, replay, pool);
    if (serial_life.samples != pooled_life.samples ||
        serial_life.mean != pooled_life.mean ||
        serial_life.half_width != pooled_life.half_width ||
        serial_life.censored != pooled_life.censored ||
        serial_life.mean_totals != pooled_life.mean_totals ||
        serial_life.mean_delivered != pooled_life.mean_delivered ||
        serial_life.mean_recovered != pooled_life.mean_recovered ||
        serial_life.outcomes.size() != pooled_life.outcomes.size()) {
        std::fprintf(stderr, "FAIL: pooled battery replay differs from serial\n");
        return 1;
    }
    for (std::size_t r = 0; r < serial_life.outcomes.size(); ++r) {
        const battery::ReplicationOutcome& s = serial_life.outcomes[r];
        const battery::ReplicationOutcome& p = pooled_life.outcomes[r];
        if (s.time != p.time || s.depleted != p.depleted ||
            s.delivered != p.delivered || s.recovered != p.recovered ||
            s.state_of_charge != p.state_of_charge || s.totals != p.totals) {
            std::fprintf(stderr,
                         "FAIL: battery outcome %zu differs pooled vs serial\n", r);
            return 1;
        }
    }
    std::printf("OK: pooled replication/depletion/battery primitives match serial\n");
    return 0;
}

}  // namespace

int main() {
    if (const int rc = check_parallel_refinement(); rc != 0) return rc;
    if (const int rc = check_pooled_primitives(); rc != 0) return rc;

    exp::ModelCache cache;
    const exp::Experiment experiment = sweep(cache);

    exp::RunOptions serial;
    serial.jobs = 1;
    serial.base_seed = 7;
    exp::RunOptions parallel;
    parallel.jobs = 4;
    parallel.base_seed = 7;

    const exp::ResultSet a = exp::run(experiment, serial);
    const exp::ResultSet b = exp::run(experiment, parallel);

    if (a.size() != b.size()) {
        std::fprintf(stderr, "FAIL: %zu serial points vs %zu parallel\n", a.size(),
                     b.size());
        return 1;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.at(i).result.values != b.at(i).result.values ||
            a.at(i).result.half_widths != b.at(i).result.half_widths) {
            std::fprintf(stderr, "FAIL: point %zu differs between jobs=1 and jobs=4\n",
                         i);
            return 1;
        }
    }
    const exp::ModelCache::Stats stats = cache.stats();
    std::printf("OK: %zu points bit-identical across jobs counts (cache %llu/%llu)\n",
                a.size(), static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));

    // Battery replay sweep over the same shared simulator.
    const adl::ComposedModel model = adl::compose(cell_system());
    const sim::Simulator simulator(model, cell_measures());
    const exp::Experiment lifetime = battery_sweep(simulator);
    const exp::ResultSet c = exp::run(lifetime, serial);
    const exp::ResultSet d = exp::run(lifetime, parallel);
    if (c.size() != d.size()) {
        std::fprintf(stderr, "FAIL: %zu serial battery points vs %zu parallel\n",
                     c.size(), d.size());
        return 1;
    }
    for (std::size_t i = 0; i < c.size(); ++i) {
        if (c.at(i).result.values != d.at(i).result.values ||
            c.at(i).result.half_widths != d.at(i).result.half_widths) {
            std::fprintf(stderr,
                         "FAIL: battery point %zu differs between jobs=1 and jobs=4\n",
                         i);
            return 1;
        }
    }
    std::printf("OK: %zu battery replay points bit-identical across jobs counts\n",
                c.size());

    // Event telemetry: workers finish out of order, the runner drains the
    // contiguous completed prefix under one mutex — so the stream (timing
    // fields off) must be byte-identical for every jobs count, and the sink
    // callback itself is a shared structure TSan should watch.
    const auto capture_events = [&](std::size_t jobs) {
        std::string stream;
        exp::RunOptions options;
        options.jobs = jobs;
        options.base_seed = 7;
        options.events.timing = false;
        options.events.sink = [&stream](const std::string& line) {
            stream += line;
            stream += '\n';
        };
        (void)exp::run(experiment, options);
        return stream;
    };
    const std::string events1 = capture_events(1);
    const std::string events8 = capture_events(8);
    if (events1.empty() || events1 != events8) {
        std::fprintf(stderr, "FAIL: event stream differs between jobs=1 and jobs=8\n");
        return 1;
    }
    std::printf("OK: event stream byte-identical across jobs counts (%zu bytes)\n",
                events1.size());

    // Run record of everything above: must be strict JSON with the
    // ResultSet series embedded intact.
    obs::RunReport record("tsan_smoke");
    record.add_series(a.json());
    record.add_series(c.json());
    std::string error;
    if (!obs::json_valid(record.json(), &error)) {
        std::fprintf(stderr, "FAIL: run record is not valid JSON: %s\n",
                     error.c_str());
        return 1;
    }
    std::printf("OK: run record round-trips the validator\n");
    return 0;
}
