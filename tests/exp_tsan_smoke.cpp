/// \file exp_tsan_smoke.cpp
/// Plain-main determinism smoke for the experiment engine, designed to run
/// under ThreadSanitizer (see DPMA_SANITIZE / DPMA_EXP_CORE_ONLY in the top
/// CMakeLists and the exp_tsan_nested ctest entry).  It exercises the racy
/// surface on purpose: a sweep fans points out over a pool and every point
/// fans simulation replications out over the *same* pool (nested run()),
/// all of them patching and reading shared cached models.  The program
/// fails (exit 1) when a parallel sweep is not bit-identical to the serial
/// one, so it doubles as a scheduler-independence check in plain builds.
///
/// Intentionally GTest-free: the sanitized nested build only compiles the
/// engine's own libraries.

#include <cstdio>
#include <vector>

#include "adl/compose.hpp"
#include "adl/measure.hpp"
#include "exp/cache.hpp"
#include "exp/experiment.hpp"
#include "exp/pool.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "models/builder.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;

/// A two-state exponential on/off cell: the smallest model with a
/// patchable rate and a non-trivial steady state.
adl::ArchiType cell_system() {
    adl::ElemType cell;
    cell.name = "Cell_Type";
    cell.behaviors = {
        adl::BehaviorDef{"On", {}, {models::alt({models::act("work", lts::RateExp{1.0})}, "Off")}},
        adl::BehaviorDef{"Off", {}, {models::alt({models::act("rest", lts::RateExp{2.0})}, "On")}},
    };
    adl::ArchiType archi;
    archi.name = "Smoke";
    archi.elem_types = {cell};
    archi.instances = {adl::Instance{"M", "Cell_Type", {}}};
    return archi;
}

std::vector<adl::Measure> cell_measures() {
    return {
        adl::Measure{"busy", {adl::state_reward_in("M", "On", 1.0)}},
        adl::Measure{"work_freq", {adl::trans_reward("M", "work", 1.0)}},
    };
}

exp::Experiment sweep(exp::ModelCache& cache) {
    exp::Experiment experiment;
    experiment.name = "tsan_smoke";
    experiment.grid.axis(exp::Axis::linspace("work_rate", 0.5, 4.0, 6));
    experiment.measures = {"busy", "work_freq"};
    experiment.eval = [&cache](const exp::Point& point,
                               const exp::PointContext& context) {
        const auto skeleton = cache.composed(
            "cell", [] { return adl::compose(cell_system()); });
        const adl::ComposedModel patched =
            exp::with_exp_rate(*skeleton, "M", "work", point.at("work_rate"));
        const sim::Simulator simulator(patched, cell_measures());
        sim::SimOptions options;
        options.warmup = 5.0;
        options.horizon = 200.0;
        options.seed = context.seed();
        const std::vector<sim::Estimate> estimates = exp::simulate_replications(
            simulator, options, 5, 0.90, *context.pool);
        exp::PointResult result;
        for (const sim::Estimate& e : estimates) {
            result.values.push_back(e.mean);
            result.half_widths.push_back(e.half_width);
        }
        return result;
    };
    return experiment;
}

}  // namespace

int main() {
    exp::ModelCache cache;
    const exp::Experiment experiment = sweep(cache);

    exp::RunOptions serial;
    serial.jobs = 1;
    serial.base_seed = 7;
    exp::RunOptions parallel;
    parallel.jobs = 4;
    parallel.base_seed = 7;

    const exp::ResultSet a = exp::run(experiment, serial);
    const exp::ResultSet b = exp::run(experiment, parallel);

    if (a.size() != b.size()) {
        std::fprintf(stderr, "FAIL: %zu serial points vs %zu parallel\n", a.size(),
                     b.size());
        return 1;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.at(i).result.values != b.at(i).result.values ||
            a.at(i).result.half_widths != b.at(i).result.half_widths) {
            std::fprintf(stderr, "FAIL: point %zu differs between jobs=1 and jobs=4\n",
                         i);
            return 1;
        }
    }
    const exp::ModelCache::Stats stats = cache.stats();
    std::printf("OK: %zu points bit-identical across jobs counts (cache %llu/%llu)\n",
                a.size(), static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
    return 0;
}
