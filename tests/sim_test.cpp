#include <gtest/gtest.h>

#include <cmath>

#include "adl/compose.hpp"
#include "core/error.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/builder.hpp"
#include "sim/gsmp.hpp"
#include "sim/rng.hpp"

namespace dpma::sim {
namespace {

using models::act;
using models::alt;

TEST(Rng, IsDeterministicPerSeed) {
    Rng a(123), b(123), c(124);
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
    EXPECT_NE(a.uniform01(), c.uniform01());
}

TEST(Rng, Uniform01StaysInRange) {
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowIsUnbiasedEnough) {
    Rng rng(5);
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 30000; ++i) ++counts[rng.below(3)];
    for (int c : counts) EXPECT_NEAR(c, 10000, 400);
}

TEST(Rng, DerivedSeedsDiffer) {
    EXPECT_NE(Rng::derive_seed(1, 0), Rng::derive_seed(1, 1));
    EXPECT_NE(Rng::derive_seed(1, 0), Rng::derive_seed(2, 0));
}

struct DistCase {
    Dist dist;
    double mean;
    double variance;
    const char* name;
};

class DistributionMoments : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionMoments, SampleMomentsMatchAnalytic) {
    const DistCase& c = GetParam();
    Rng rng(20250705);
    const int n = 200000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.sample(c.dist);
        EXPECT_GE(x, 0.0);
        sum += x;
        sum2 += x * x;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, c.mean, 5.0 * std::sqrt(std::max(c.variance, 1e-12) / n) + 1e-9)
        << c.name;
    if (c.variance > 0.0) {
        EXPECT_NEAR(var, c.variance, 0.05 * c.variance + 1e-9) << c.name;
    } else {
        EXPECT_NEAR(var, 0.0, 1e-12) << c.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, DistributionMoments,
    ::testing::Values(
        DistCase{Dist::exponential(2.0), 0.5, 0.25, "exp"},
        DistCase{Dist::deterministic(3.0), 3.0, 0.0, "det"},
        DistCase{Dist::uniform(1.0, 5.0), 3.0, 16.0 / 12.0, "unif"},
        DistCase{Dist::normal(10.0, 0.5), 10.0, 0.25, "norm"},
        DistCase{Dist::erlang(4, 2.0), 2.0, 1.0, "erlang"},
        DistCase{Dist::weibull(1.0, 2.0), 2.0, 4.0, "weibull_exp"},
        DistCase{Dist::lognormal(0.0, 0.25),
                 std::exp(0.03125),
                 (std::exp(0.0625) - 1.0) * std::exp(0.0625), "lognorm"}),
    [](const ::testing::TestParamInfo<DistCase>& info) { return info.param.name; });

/// Single-component cycle: work (exp) then rest (exp).  Its CTMC is the
/// two-state chain, giving exact targets for the simulator's estimates.
adl::ArchiType two_phase(lts::Rate work, lts::Rate rest) {
    adl::ArchiType archi;
    archi.name = "TwoPhase";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"Working", {}, {alt({act("finish", work)}, "Resting")}},
        adl::BehaviorDef{"Resting", {}, {alt({act("restart", rest)}, "Working")}},
    };
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    return archi;
}

std::vector<adl::Measure> two_phase_measures() {
    adl::Measure p_work{"p_working", {adl::state_reward_in("X", "Working", 1.0)}};
    adl::Measure throughput{"throughput", {adl::trans_reward("X", "finish", 1.0)}};
    return {p_work, throughput};
}

TEST(Simulator, MatchesCtmcOnExponentialModel) {
    const adl::ComposedModel model =
        adl::compose(two_phase(lts::RateExp{2.0}, lts::RateExp{1.0}));
    const Simulator simulator(model, two_phase_measures());
    SimOptions options;
    options.warmup = 50.0;
    options.horizon = 5000.0;
    options.seed = 11;
    const auto estimates = simulate_replications(simulator, options, 20, 0.95);
    // CTMC: p(Working) = (1/2) / (1/2 + 1) = 1/3; throughput = 1/1.5.
    EXPECT_NEAR(estimates[0].mean, 1.0 / 3.0, 4 * estimates[0].half_width + 0.003);
    EXPECT_NEAR(estimates[1].mean, 2.0 / 3.0, 4 * estimates[1].half_width + 0.005);
    EXPECT_GT(estimates[0].half_width, 0.0);
}

TEST(Simulator, DeterministicCycleIsExact) {
    const adl::ComposedModel model =
        adl::compose(two_phase(lts::RateGeneral{Dist::deterministic(2.0)},
                               lts::RateGeneral{Dist::deterministic(3.0)}));
    const Simulator simulator(model, two_phase_measures());
    SimOptions options;
    options.warmup = 10.0;
    options.horizon = 5000.0;
    options.seed = 3;
    const RunResult run = simulator.run(options);
    EXPECT_NEAR(run.values[0], 0.4, 1e-3);        // 2 / (2+3)
    EXPECT_NEAR(run.values[1], 0.2, 1e-3);        // one finish per 5 time units
}

TEST(Simulator, SameSeedSameResult) {
    const adl::ComposedModel model =
        adl::compose(two_phase(lts::RateExp{2.0}, lts::RateExp{1.0}));
    const Simulator simulator(model, two_phase_measures());
    SimOptions options;
    options.horizon = 100.0;
    options.seed = 77;
    const RunResult a = simulator.run(options);
    const RunResult b = simulator.run(options);
    EXPECT_EQ(a.values, b.values);
    EXPECT_EQ(a.events, b.events);
}

TEST(Simulator, RejectsFunctionalModels) {
    const adl::ComposedModel model =
        adl::compose(two_phase(lts::RateUnspecified{}, lts::RateExp{1.0}));
    EXPECT_THROW(Simulator(model, two_phase_measures()), ModelError);
}

TEST(Simulator, RejectsNonPositiveHorizon) {
    const adl::ComposedModel model =
        adl::compose(two_phase(lts::RateExp{2.0}, lts::RateExp{1.0}));
    const Simulator simulator(model, two_phase_measures());
    SimOptions options;
    options.horizon = 0.0;
    EXPECT_THROW((void)simulator.run(options), Error);
}

TEST(Simulator, DetectsImmediateLivelock) {
    adl::ArchiType archi;
    archi.name = "Livelock";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"A", {}, {alt({act("ping", lts::RateImmediate{})}, "B")}},
        adl::BehaviorDef{"B", {}, {alt({act("pong", lts::RateImmediate{})}, "A")}},
    };
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    const adl::ComposedModel model = adl::compose(archi);
    const Simulator simulator(model, {});
    SimOptions options;
    options.horizon = 1.0;
    options.max_immediate_burst = 1000;
    EXPECT_THROW((void)simulator.run(options), NumericalError);
}

TEST(Simulator, DeadlockedModelSpendsAllTimeInSink) {
    adl::ArchiType archi;
    archi.name = "Sink";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"Go", {}, {alt({act("once", lts::RateExp{100.0})}, "Stop")}},
        adl::BehaviorDef{"Stop", {}, {alt({act("in", lts::RatePassive{})}, "Stop")}},
    };
    t.input_interactions = {"in"};  // unattached: Stop deadlocks
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    const adl::ComposedModel model = adl::compose(archi);

    adl::Measure stopped{"p_stop", {adl::state_reward_in("X", "Stop", 1.0)}};
    const Simulator simulator(model, {stopped});
    SimOptions options;
    options.horizon = 1000.0;
    options.seed = 5;
    const RunResult run = simulator.run(options);
    EXPECT_GT(run.values[0], 0.99);
}

TEST(Simulator, ImmediatePrioritiesPreemptLowerOnes) {
    adl::ArchiType archi;
    archi.name = "Prio";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"S", {}, {alt({act("tick", lts::RateExp{1.0})}, "Pick")}},
        adl::BehaviorDef{"Pick", {},
            {alt({act("low", lts::RateImmediate{1, 1.0})}, "S"),
             alt({act("high", lts::RateImmediate{2, 1.0})}, "S")}},
    };
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    const adl::ComposedModel model = adl::compose(archi);
    adl::Measure low{"low", {adl::trans_reward("X", "low", 1.0)}};
    adl::Measure high{"high", {adl::trans_reward("X", "high", 1.0)}};
    const Simulator simulator(model, {low, high});
    SimOptions options;
    options.horizon = 500.0;
    options.seed = 1;
    const RunResult run = simulator.run(options);
    EXPECT_DOUBLE_EQ(run.values[0], 0.0);
    EXPECT_GT(run.values[1], 0.5);
}

TEST(Simulator, ImmediateWeightsSplitProportionally) {
    adl::ArchiType archi;
    archi.name = "Weights";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"S", {}, {alt({act("tick", lts::RateExp{1.0})}, "Pick")}},
        adl::BehaviorDef{"Pick", {},
            {alt({act("rare", lts::RateImmediate{1, 0.1})}, "S"),
             alt({act("common", lts::RateImmediate{1, 0.9})}, "S")}},
    };
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    const adl::ComposedModel model = adl::compose(archi);
    adl::Measure rare{"rare", {adl::trans_reward("X", "rare", 1.0)}};
    adl::Measure common{"common", {adl::trans_reward("X", "common", 1.0)}};
    const Simulator simulator(model, {rare, common});
    SimOptions options;
    options.horizon = 50000.0;
    options.seed = 99;
    const RunResult run = simulator.run(options);
    const double ratio = run.values[0] / (run.values[0] + run.values[1]);
    EXPECT_NEAR(ratio, 0.1, 0.01);
}

TEST(Replications, ConfidenceNarrowsWithMoreRuns) {
    const adl::ComposedModel model =
        adl::compose(two_phase(lts::RateExp{2.0}, lts::RateExp{1.0}));
    const Simulator simulator(model, two_phase_measures());
    SimOptions options;
    options.horizon = 200.0;
    options.seed = 17;
    const auto few = simulate_replications(simulator, options, 5, 0.90);
    const auto many = simulate_replications(simulator, options, 40, 0.90);
    EXPECT_LT(many[0].half_width, few[0].half_width);
    EXPECT_EQ(many[0].samples.size(), 40u);
}

/// Cross-validation in the spirit of Fig. 5: a GSMP simulation with all
/// delays exponential must agree with the CTMC solution of the same model.
TEST(Validation, GsmpWithExponentialDelaysMatchesCtmc) {
    const adl::ArchiType archi = two_phase(lts::RateExp{0.8}, lts::RateExp{2.4});
    const adl::ComposedModel model = adl::compose(archi);

    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    const auto measures = two_phase_measures();
    const double exact_p =
        ctmc::evaluate_measure(markov, model, pi, measures[0]);
    const double exact_tput =
        ctmc::evaluate_measure(markov, model, pi, measures[1]);

    const Simulator simulator(model, measures);
    SimOptions options;
    options.warmup = 100.0;
    options.horizon = 4000.0;
    options.seed = 2024;
    const auto estimates = simulate_replications(simulator, options, 30, 0.90);
    EXPECT_NEAR(estimates[0].mean, exact_p, 5 * estimates[0].half_width + 1e-3);
    EXPECT_NEAR(estimates[1].mean, exact_tput, 5 * estimates[1].half_width + 1e-3);
}

}  // namespace
}  // namespace dpma::sim
