/// \file sim_diff_test.cpp
/// Differential tests for the compiled scheduler (sim/compiled.hpp): the
/// hot-path Simulator is compared against the retired clock-map scheduler,
/// kept here verbatim as a standalone reference, on the shipped model
/// families.  Traces, raw totals, event counts, depletion times and
/// observer callbacks must agree bit for bit when the Markov fast path is
/// off; the fast path itself is pinned to be deterministic and
/// jobs-independent (it is equal in law, not samplewise, to the clocked
/// stream).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "adl/compose.hpp"
#include "adl/measure.hpp"
#include "core/error.hpp"
#include "core/stats_math.hpp"
#include "models/builder.hpp"
#include "models/rpc.hpp"
#include "models/streaming.hpp"
#include "sim/gsmp.hpp"
#include "sim/rng.hpp"

namespace dpma::sim {
namespace {

using models::act;
using models::alt;

// ---------------------------------------------------------------------------
// Reference scheduler: the retired per-run implementation, verbatim except
// that reward tables are built locally and batch-means support is dropped.
// ---------------------------------------------------------------------------

/// Maximal-progress immediate choice of the retired scheduler (highest
/// priority, then a weight-proportional subtractive scan over `out`).
int ref_choose_immediate(const adl::ComposedModel& model, lts::StateId state,
                         Rng& rng) {
    int best_priority = std::numeric_limits<int>::min();
    double total_weight = 0.0;
    const auto out = model.graph.out(state);
    for (const lts::Transition& t : out) {
        if (const auto* imm = std::get_if<lts::RateImmediate>(&t.rate)) {
            if (imm->priority > best_priority) {
                best_priority = imm->priority;
                total_weight = 0.0;
            }
            if (imm->priority == best_priority) total_weight += imm->weight;
        }
    }
    if (total_weight <= 0.0) return -1;
    double pick = rng.uniform01() * total_weight;
    int fallback = -1;
    for (std::size_t k = 0; k < out.size(); ++k) {
        if (const auto* imm = std::get_if<lts::RateImmediate>(&out[k].rate)) {
            if (imm->priority != best_priority || imm->weight <= 0.0) continue;
            fallback = static_cast<int>(k);
            pick -= imm->weight;
            if (pick <= 0.0) return static_cast<int>(k);
        }
    }
    return fallback;  // numerical slack: last candidate
}

Dist ref_dist_of(const lts::Rate& rate) {
    if (const auto* exp_rate = std::get_if<lts::RateExp>(&rate)) {
        return Dist::exponential(exp_rate->rate);
    }
    if (const auto* gen = std::get_if<lts::RateGeneral>(&rate)) {
        return gen->dist;
    }
    throw ModelError("transition without a timed rate reached the scheduler");
}

struct RefStop {
    std::size_t measure;
    double threshold;
};

struct RefResult {
    std::vector<double> totals;  ///< raw (not time-averaged)
    std::uint64_t events = 0;
    double stop_time = 0.0;
    bool stopped = false;
    std::vector<TraceEvent> trace;
};

/// The retired Simulator::run_impl as a free function.  The clock container
/// is a real std::unordered_map, exactly as before, so the tie-scan RNG
/// permutation the compiled scheduler *models* is checked against the
/// library's actual iteration order.
RefResult reference_run(const adl::ComposedModel& model,
                        const std::vector<adl::Measure>& measures,
                        const SimOptions& options, const RefStop* stop = nullptr,
                        TrajectoryObserver* observer = nullptr) {
    const std::size_t num_states = model.graph.num_states();
    const std::size_t num_actions = model.graph.actions()->size();
    std::vector<std::vector<double>> state_reward_rate(measures.size());
    std::vector<std::vector<double>> action_reward(measures.size());
    for (std::size_t m = 0; m < measures.size(); ++m) {
        state_reward_rate[m].assign(num_states, 0.0);
        action_reward[m].assign(num_actions, 0.0);
        for (const adl::RewardClause& clause : measures[m].clauses) {
            if (clause.target == adl::RewardClause::Target::State) {
                const auto mask = adl::state_mask(model, clause.predicate);
                for (lts::StateId s = 0; s < num_states; ++s) {
                    if (mask[s]) state_reward_rate[m][s] += clause.reward;
                }
            } else {
                const auto mask = adl::action_mask(model, clause.predicate);
                for (lts::ActionId a = 0; a < num_actions; ++a) {
                    if (mask[a]) action_reward[m][a] += clause.reward;
                }
            }
        }
    }

    Rng rng(options.seed);
    const double t_begin = options.warmup;
    const double t_end = options.warmup + options.horizon;

    lts::StateId state = model.graph.initial();
    double now = 0.0;
    RefResult out;
    out.stop_time = t_end;
    std::vector<KahanSum> totals(measures.size());

    std::unordered_map<lts::ActionId, double> clocks;
    std::unordered_map<lts::ActionId, double> next_clocks;

    const auto accumulate_state_time = [&](lts::StateId s, double from,
                                           double to) -> double {
        const double lo = std::max(from, t_begin);
        const double hi = std::min(to, t_end);
        if (hi <= lo) return std::numeric_limits<double>::quiet_NaN();
        const double dt = hi - lo;
        double crossing = std::numeric_limits<double>::quiet_NaN();
        if (stop != nullptr) {
            const double rate = state_reward_rate[stop->measure][s];
            const double current = totals[stop->measure].value();
            if (rate > 0.0 && current + rate * dt >= stop->threshold) {
                crossing = lo + (stop->threshold - current) / rate;
            }
        }
        for (std::size_t m = 0; m < totals.size(); ++m) {
            const double rate = state_reward_rate[m][s];
            if (rate != 0.0) totals[m].add(rate * dt);
        }
        return crossing;
    };

    const auto accumulate_firing = [&](lts::ActionId action, double at) {
        if (at < t_begin || at > t_end) return;
        for (std::size_t m = 0; m < totals.size(); ++m) {
            const double reward = action_reward[m][action];
            if (reward != 0.0) totals[m].add(reward);
        }
    };

    const auto stop_reached = [&]() {
        return stop != nullptr && totals[stop->measure].value() >= stop->threshold;
    };

    const auto observe = [&](lts::StateId s, double from, double to) -> double {
        if (observer == nullptr || to <= from) {
            return std::numeric_limits<double>::quiet_NaN();
        }
        const double at = observer->residence(s, from, to);
        if (at < 0.0) return std::numeric_limits<double>::quiet_NaN();
        return at;
    };

    std::uint64_t immediate_burst = 0;
    while (now < t_end) {
        const int imm = ref_choose_immediate(model, state, rng);
        if (imm >= 0) {
            if (++immediate_burst > options.max_immediate_burst) {
                throw NumericalError("immediate-action livelock");
            }
            const lts::Transition& t =
                model.graph.out(state)[static_cast<std::size_t>(imm)];
            accumulate_firing(t.action, now);
            if (now >= t_begin) {
                ++out.events;
                out.trace.push_back(TraceEvent{now, t.action, t.target});
            }
            state = t.target;
            if (stop_reached()) {
                out.stop_time = now;
                out.stopped = true;
                break;
            }
            continue;
        }
        immediate_burst = 0;

        const auto transitions = model.graph.out(state);
        if (transitions.empty()) {
            double seg_end = t_end;
            bool observer_stop = false;
            if (const double at = observe(state, now, t_end); !std::isnan(at)) {
                seg_end = at;
                observer_stop = true;
            }
            const double crossing = accumulate_state_time(state, now, seg_end);
            if (!std::isnan(crossing) || observer_stop) {
                out.stop_time = observer_stop ? seg_end : crossing;
                out.stopped = true;
            }
            now = seg_end;
            break;
        }
        next_clocks.clear();
        double min_remaining = std::numeric_limits<double>::infinity();
        for (const lts::Transition& t : transitions) {
            if (next_clocks.contains(t.action)) continue;
            double remaining;
            if (auto it = clocks.find(t.action); it != clocks.end()) {
                remaining = it->second;
            } else {
                remaining = rng.sample(ref_dist_of(t.rate));
            }
            next_clocks.emplace(t.action, remaining);
            min_remaining = std::min(min_remaining, remaining);
        }
        clocks.swap(next_clocks);

        const double fire_time = now + min_remaining;
        if (const double at = observe(state, now, std::min(fire_time, t_end));
            !std::isnan(at)) {
            (void)accumulate_state_time(state, now, at);
            out.stop_time = at;
            out.stopped = true;
            now = at;
            break;
        }
        const double crossing =
            accumulate_state_time(state, now, std::min(fire_time, t_end));
        if (!std::isnan(crossing)) {
            out.stop_time = crossing;
            out.stopped = true;
            const double overshoot = std::min(fire_time, t_end) - crossing;
            for (std::size_t m = 0; m < totals.size(); ++m) {
                const double rate = state_reward_rate[m][state];
                if (rate != 0.0) totals[m].add(-rate * overshoot);
            }
            now = crossing;
            break;
        }
        if (fire_time >= t_end) {
            now = t_end;
            break;
        }
        now = fire_time;

        lts::ActionId fired_label = kNoSymbol;
        std::uint32_t minimal = 0;
        for (auto& [label, remaining] : clocks) {
            remaining -= min_remaining;
            if (remaining <= 1e-15) {
                ++minimal;
                if (fired_label == kNoSymbol || rng.below(minimal) == 0) {
                    fired_label = label;
                }
            }
        }

        std::uint32_t candidates = 0;
        const lts::Transition* chosen = nullptr;
        for (const lts::Transition& t : transitions) {
            if (t.action != fired_label) continue;
            ++candidates;
            if (rng.below(candidates) == 0) chosen = &t;
        }

        accumulate_firing(fired_label, now);
        if (now >= t_begin) {
            ++out.events;
            out.trace.push_back(TraceEvent{now, fired_label, chosen->target});
        }
        clocks.erase(fired_label);
        state = chosen->target;
        if (stop_reached()) {
            out.stop_time = now;
            out.stopped = true;
            break;
        }
    }

    out.totals.reserve(measures.size());
    for (std::size_t m = 0; m < measures.size(); ++m) {
        out.totals.push_back(totals[m].value());
    }
    return out;
}

// ---------------------------------------------------------------------------
// Model families under test
// ---------------------------------------------------------------------------

struct Family {
    const char* name;
    adl::ComposedModel model;
    std::vector<adl::Measure> measures;
    std::size_t energy_measure;  ///< STATE_REWARD measure for depletion runs
    double horizon;
};

std::vector<Family> shipped_families() {
    std::vector<Family> families;
    families.push_back({"rpc_markov_dpm",
                        models::rpc::compose(models::rpc::markovian(40.0, true)),
                        models::rpc::measures(), models::rpc::kEnergyRate, 4000.0});
    families.push_back({"rpc_markov_immediate_shutdown",
                        models::rpc::compose(models::rpc::markovian(0.0, true)),
                        models::rpc::measures(), models::rpc::kEnergyRate, 4000.0});
    families.push_back({"rpc_general_dpm",
                        models::rpc::compose(models::rpc::general(40.0, true)),
                        models::rpc::measures(), models::rpc::kEnergyRate, 4000.0});
    families.push_back(
        {"streaming_markov_dpm",
         models::streaming::compose(models::streaming::markovian(100.0, true)),
         models::streaming::measures(), models::streaming::kEnergyRate, 20000.0});
    families.push_back(
        {"streaming_general_dpm",
         models::streaming::compose(models::streaming::general(100.0, true)),
         models::streaming::measures(), models::streaming::kEnergyRate, 20000.0});
    families.push_back(
        {"streaming_general_nodpm",
         models::streaming::compose(models::streaming::general(100.0, false)),
         models::streaming::measures(), models::streaming::kEnergyRate, 20000.0});
    return families;
}

SimOptions clocked_options(double horizon, std::uint64_t seed, double warmup = 0.0) {
    SimOptions options;
    options.horizon = horizon;
    options.warmup = warmup;
    options.seed = seed;
    options.markov_fast_path = false;  // compare against the clocked stream
    return options;
}

// ---------------------------------------------------------------------------
// Differential tests
// ---------------------------------------------------------------------------

TEST(SimDiff, TracesAndTotalsMatchReference) {
    for (const Family& family : shipped_families()) {
        for (const std::uint64_t seed : {1ULL, 42ULL, 20260809ULL}) {
            const Simulator simulator(family.model, family.measures);
            SimOptions options = clocked_options(family.horizon, seed);

            std::vector<TraceEvent> trace;
            const RunResult run = simulator.run(options, &trace);
            const RefResult ref =
                reference_run(family.model, family.measures, options);

            ASSERT_EQ(run.events, ref.events) << family.name << " seed " << seed;
            ASSERT_EQ(run.values.size(), ref.totals.size()) << family.name;
            for (std::size_t m = 0; m < run.values.size(); ++m) {
                // run() time-averages; apply the identical division here.
                EXPECT_EQ(run.values[m], ref.totals[m] / options.horizon)
                    << family.name << " seed " << seed << " measure " << m;
            }
            ASSERT_EQ(trace.size(), ref.trace.size()) << family.name;
            for (std::size_t i = 0; i < trace.size(); ++i) {
                EXPECT_EQ(trace[i].time, ref.trace[i].time)
                    << family.name << " event " << i;
                EXPECT_EQ(trace[i].action, ref.trace[i].action)
                    << family.name << " event " << i;
                EXPECT_EQ(trace[i].target, ref.trace[i].target)
                    << family.name << " event " << i;
            }
        }
    }
}

TEST(SimDiff, WarmupWindowMatchesReference) {
    for (const Family& family : shipped_families()) {
        const Simulator simulator(family.model, family.measures);
        SimOptions options =
            clocked_options(family.horizon / 2, 7, family.horizon / 10);

        std::vector<TraceEvent> trace;
        const RunResult run = simulator.run(options, &trace);
        const RefResult ref = reference_run(family.model, family.measures, options);

        EXPECT_EQ(run.events, ref.events) << family.name;
        for (std::size_t m = 0; m < run.values.size(); ++m) {
            EXPECT_EQ(run.values[m], ref.totals[m] / options.horizon)
                << family.name << " measure " << m;
        }
        EXPECT_EQ(trace.size(), ref.trace.size()) << family.name;
    }
}

TEST(SimDiff, DepletionTimesMatchReference) {
    for (const Family& family : shipped_families()) {
        const Simulator simulator(family.model, family.measures);
        SimOptions options = clocked_options(family.horizon, 99);

        // A threshold the run reaches partway through the horizon.
        const RefResult probe = reference_run(family.model, family.measures, options);
        const double threshold = probe.totals[family.energy_measure] / 2.0;
        if (!(threshold > 0.0)) GTEST_SKIP() << family.name << " accrues no energy";

        const RefStop stop{family.energy_measure, threshold};
        const RefResult ref =
            reference_run(family.model, family.measures, options, &stop);
        const DepletionResult run =
            simulator.run_until(family.energy_measure, threshold, options);

        EXPECT_EQ(run.depleted, ref.stopped) << family.name;
        EXPECT_EQ(run.time, ref.stop_time) << family.name;
        ASSERT_EQ(run.totals.size(), ref.totals.size());
        for (std::size_t m = 0; m < run.totals.size(); ++m) {
            EXPECT_EQ(run.totals[m], ref.totals[m]) << family.name << " measure " << m;
        }
    }
}

/// Records every residence interval; optionally stops inside the k-th.
class RecordingObserver final : public TrajectoryObserver {
public:
    explicit RecordingObserver(int stop_at = -1) : stop_at_(stop_at) {}

    double residence(lts::StateId state, double from, double to) override {
        log_.emplace_back(state, from, to);
        if (static_cast<int>(log_.size()) == stop_at_) {
            return from + 0.25 * (to - from);
        }
        return -1.0;
    }

    [[nodiscard]] const std::vector<std::tuple<lts::StateId, double, double>>& log()
        const {
        return log_;
    }

private:
    int stop_at_;
    std::vector<std::tuple<lts::StateId, double, double>> log_;
};

TEST(SimDiff, ObservedTrajectoriesMatchReference) {
    for (const Family& family : shipped_families()) {
        const Simulator simulator(family.model, family.measures);
        SimOptions options = clocked_options(family.horizon / 4, 5);

        for (const int stop_at : {-1, 10}) {
            RecordingObserver new_observer(stop_at);
            RecordingObserver ref_observer(stop_at);
            const ObservedResult run = simulator.run_observed(options, new_observer);
            const RefResult ref = reference_run(family.model, family.measures,
                                                options, nullptr, &ref_observer);

            EXPECT_EQ(run.stopped, ref.stopped) << family.name;
            EXPECT_EQ(run.time, ref.stop_time) << family.name;
            EXPECT_EQ(run.events, ref.events) << family.name;
            for (std::size_t m = 0; m < run.totals.size(); ++m) {
                EXPECT_EQ(run.totals[m], ref.totals[m])
                    << family.name << " measure " << m;
            }
            ASSERT_EQ(new_observer.log().size(), ref_observer.log().size())
                << family.name;
            EXPECT_EQ(new_observer.log(), ref_observer.log()) << family.name;
        }
    }
}

// ---------------------------------------------------------------------------
// Fast path and construction-time validation
// ---------------------------------------------------------------------------

TEST(SimDiff, FastPathIsDeterministicAndEligibleOnlyForMarkovModels) {
    const adl::ComposedModel markov =
        models::rpc::compose(models::rpc::markovian(40.0, true));
    const adl::ComposedModel general =
        models::rpc::compose(models::rpc::general(40.0, true));
    const Simulator fast(markov, models::rpc::measures());
    const Simulator slow(general, models::rpc::measures());
    EXPECT_TRUE(fast.fast_path_eligible());
    EXPECT_FALSE(slow.fast_path_eligible());

    SimOptions options;
    options.horizon = 4000.0;
    options.seed = 11;
    ASSERT_TRUE(options.markov_fast_path);
    const RunResult a = fast.run(options);
    const RunResult b = fast.run(options);
    EXPECT_EQ(a.values, b.values);
    EXPECT_EQ(a.events, b.events);

    // Fast and clocked paths agree in law: time averages of the busiest
    // measure stay within a loose statistical band of each other.
    options.markov_fast_path = false;
    const RunResult clocked = fast.run(options);
    for (std::size_t m = 0; m < a.values.size(); ++m) {
        if (clocked.values[m] != 0.0) {
            EXPECT_NEAR(a.values[m] / clocked.values[m], 1.0, 0.35)
                << "measure " << m;
        }
    }
}

adl::ArchiType zero_weight_immediates() {
    adl::ArchiType archi;
    archi.name = "ZeroWeights";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"Start", {}, {alt({act("step", lts::RateExp{1.0})}, "Choice")}},
        adl::BehaviorDef{"Choice",
                         {},
                         {alt({act("left", lts::RateImmediate{1, 0.0})}, "Start"),
                          alt({act("right", lts::RateImmediate{1, 0.0})}, "Start")}},
    };
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    return archi;
}

TEST(SimDiff, RejectsZeroWeightImmediatesAtConstruction) {
    // The retired scheduler silently fell through to timed scheduling in a
    // state whose best-priority immediate weights sum to zero — a deadlock
    // here, since the state has no timed transitions.  The compiled tables
    // surface the modelling error when the Simulator is built.
    const adl::ComposedModel model = adl::compose(zero_weight_immediates());
    EXPECT_THROW(Simulator(model, {}), ModelError);
}

}  // namespace
}  // namespace dpma::sim
