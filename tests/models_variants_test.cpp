#include <gtest/gtest.h>

#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "lts/ops.hpp"
#include "models/rpc.hpp"
#include "models/streaming.hpp"
#include "bisim/hml.hpp"
#include "noninterference/noninterference.hpp"
#include "sim/gsmp.hpp"

namespace dpma::models {
namespace {

/// The Sect. 2.1 variant: the revised server also accepts shutdowns while
/// busy/responding, exercised through the trivial (free-running) DPM.

rpc::Config busy_sensitive_config(double period) {
    rpc::Config config = rpc::markovian(period, true);
    config.policy = rpc::DpmPolicy::Trivial;
    config.shutdown_when_busy = true;
    return config;
}

TEST(ShutdownWhenBusy, ArchitectureValidatesAndIsDeadlockFree) {
    const adl::ComposedModel model = rpc::compose(busy_sensitive_config(5.0));
    // The revised client's resend timeout keeps the system live even though
    // in-service requests can be killed.
    EXPECT_TRUE(lts::deadlock_states(model.graph).empty());
}

TEST(ShutdownWhenBusy, ServerCanReachSleepFromBusy) {
    const adl::ComposedModel model = rpc::compose(busy_sensitive_config(1.0));
    // The busy -> sleeping transition must exist in the composed graph.
    const Symbol shutdown =
        model.graph.actions()->find("DPM.send_shutdown#S.receive_shutdown");
    ASSERT_NE(shutdown, kNoSymbol);
    const std::size_t server = model.instance_index("S");
    bool killed_in_service = false;
    for (lts::StateId s = 0; s < model.graph.num_states(); ++s) {
        if (model.local_state_name(s, server).rfind("Busy_Server", 0) != 0) continue;
        for (const lts::Transition& t : model.graph.out(s)) {
            if (t.action == shutdown) killed_in_service = true;
        }
    }
    EXPECT_TRUE(killed_in_service);
}

TEST(ShutdownWhenBusy, CostsThroughputForLittleEnergy) {
    const auto solve = [](const rpc::Config& config) {
        const adl::ComposedModel model = rpc::compose(config);
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto pi = ctmc::steady_state(markov.chain);
        const auto ms = rpc::measures();
        const double tput =
            ctmc::evaluate_measure(markov, model, pi, ms[rpc::kThroughput]);
        const double energy =
            ctmc::evaluate_measure(markov, model, pi, ms[rpc::kEnergyRate]);
        return std::make_pair(tput, energy);
    };
    rpc::Config idle_only = rpc::markovian(1.0, true);
    idle_only.policy = rpc::DpmPolicy::Trivial;
    const auto [tput_idle, energy_idle] = solve(idle_only);
    const auto [tput_busy, energy_busy] = solve(busy_sensitive_config(1.0));
    EXPECT_LT(tput_busy, tput_idle);
    (void)energy_idle;
    (void)energy_busy;
}

TEST(ShutdownWhenBusy, StaysObservableDespiteTheClientTimeout) {
    // The client's resend timeout removes the *deadlock* of Sect. 2.3, but
    // killing an in-service request is still observable: the number of
    // results that can reach the client after a send/timeout/resend pattern
    // differs between the hidden and the restricted view (the generated
    // formula nests <<receive_result>> multiplicities under
    // <<expire_timeout>>).  This substantiates the paper's second revision
    // step — "the DPM cannot shut down the server while it is busy" — as
    // *necessary* for transparency, not merely prudent.
    rpc::Config config = rpc::revised_functional();
    config.policy = rpc::DpmPolicy::Trivial;
    config.shutdown_when_busy = true;
    const adl::ComposedModel model = rpc::compose(config);
    const auto verdict = noninterference::check_dpm_transparency(
        model, rpc::high_action_labels(), "C");
    EXPECT_FALSE(verdict.noninterfering);
    ASSERT_NE(verdict.formula, nullptr);
    // The witness involves the client's timeout capability.
    EXPECT_NE(bisim::to_compact(verdict.formula).find("C.expire_timeout"),
              std::string::npos);
}

TEST(ShutdownWhenBusy, FlagIsIgnoredUnderIdleTimeoutPolicy) {
    // The idle-timeout DPM is disabled whenever the server is busy, so the
    // extra transitions are never enabled: both models have the same
    // steady-state measures.
    rpc::Config plain = rpc::markovian(5.0, true);
    rpc::Config flagged = plain;
    flagged.shutdown_when_busy = true;
    const auto solve = [](const rpc::Config& config) {
        const adl::ComposedModel model = rpc::compose(config);
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto pi = ctmc::steady_state(markov.chain);
        return ctmc::evaluate_measure(markov, model, pi,
                                      rpc::measures()[rpc::kThroughput]);
    };
    EXPECT_NEAR(solve(plain), solve(flagged), 1e-12);
}

TEST(StreamingVariants, ZeroAwakePeriodBehavesLikeHighDutyCycle) {
    // awake period 0: the DPM wakes the NIC immediately after shutdown; the
    // wake-up/check transients dominate and energy per frame *exceeds* the
    // always-on baseline (paper Fig. 4 leftmost point).
    const auto epf = [](double period, bool dpm) {
        const adl::ComposedModel model =
            streaming::compose(streaming::markovian(period, dpm));
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto pi = ctmc::steady_state(markov.chain);
        const auto ms = streaming::measures();
        const double energy = ctmc::evaluate_measure(
            markov, model, pi, ms[streaming::kEnergyRate]);
        const double frames = ctmc::evaluate_measure(
            markov, model, pi, ms[streaming::kFramesReceived]);
        return energy / frames;
    };
    EXPECT_GT(epf(0.0, true), epf(100.0, false));
}

TEST(StreamingVariants, AsymmetricBufferCapacitiesCompose) {
    streaming::Config config = streaming::markovian(100.0, true);
    config.params.ap_capacity = 3;
    config.params.b_capacity = 7;
    const adl::ComposedModel model = streaming::compose(config);
    EXPECT_TRUE(lts::deadlock_states(model.graph).empty());
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    double total = 0.0;
    for (double p : pi) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(StreamingVariants, GeneralPhaseSimulatesWithMixedDistributions) {
    // The general streaming model mixes deterministic timers with the
    // Gaussian channel; a short smoke simulation must produce sane values.
    const adl::ComposedModel model =
        streaming::compose(streaming::general(100.0, true));
    const sim::Simulator simulator(model, streaming::measures());
    sim::SimOptions options;
    options.warmup = 2000.0;
    options.horizon = 20000.0;
    options.seed = 5;
    const sim::RunResult run = simulator.run(options);
    const double generated = run.values[streaming::kGenerated];
    EXPECT_NEAR(generated, 1.0 / 67.0, 0.002);
    EXPECT_GE(run.values[streaming::kMiss], 0.0);
    EXPECT_GT(run.values[streaming::kHits], 0.0);
}

TEST(RpcVariants, LossProbabilityZeroRemovesChannelLoss) {
    rpc::Config config = rpc::markovian(5.0, true);
    config.params.loss_probability = 0.0;
    const adl::ComposedModel model = rpc::compose(config);
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    const auto freq = ctmc::action_frequencies(markov, model, pi);
    const Symbol lose_rcs = model.graph.actions()->find("RCS.lose_packet");
    const Symbol lose_rsc = model.graph.actions()->find("RSC.lose_packet");
    if (lose_rcs != kNoSymbol) {
        EXPECT_DOUBLE_EQ(freq[lose_rcs], 0.0);
    }
    if (lose_rsc != kNoSymbol) {
        EXPECT_DOUBLE_EQ(freq[lose_rsc], 0.0);
    }
}

TEST(RpcVariants, FasterServerRaisesThroughput) {
    const auto tput = [](double service) {
        rpc::Config config = rpc::markovian(10.0, true);
        config.params.service_time = service;
        const adl::ComposedModel model = rpc::compose(config);
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto pi = ctmc::steady_state(markov.chain);
        return ctmc::evaluate_measure(markov, model, pi,
                                      rpc::measures()[rpc::kThroughput]);
    };
    EXPECT_GT(tput(0.1), tput(2.0));
}

}  // namespace
}  // namespace dpma::models
