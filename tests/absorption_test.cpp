#include <gtest/gtest.h>

#include <cmath>

#include "adl/compose.hpp"
#include "core/error.hpp"
#include "ctmc/absorption.hpp"
#include "ctmc/ctmc.hpp"
#include "models/streaming.hpp"

namespace dpma::ctmc {
namespace {

TEST(HittingTimes, SingleStepExponential) {
    Ctmc chain(2);
    chain.add_rate(0, 1, 4.0);
    const std::vector<char> targets{0, 1};
    const auto h = expected_hitting_times(chain, targets);
    EXPECT_DOUBLE_EQ(h[1], 0.0);
    EXPECT_NEAR(h[0], 0.25, 1e-12);
}

TEST(HittingTimes, PureBirthChainSumsStageMeans) {
    // 0 ->(1) 1 ->(2) 2 ->(4) 3: expected total = 1 + 1/2 + 1/4.
    Ctmc chain(4);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(1, 2, 2.0);
    chain.add_rate(2, 3, 4.0);
    const std::vector<char> targets{0, 0, 0, 1};
    const auto h = expected_hitting_times(chain, targets);
    EXPECT_NEAR(h[0], 1.75, 1e-12);
    EXPECT_NEAR(h[1], 0.75, 1e-12);
    EXPECT_NEAR(h[2], 0.25, 1e-12);
}

TEST(HittingTimes, BacktrackingChainMatchesClosedForm) {
    // Two states before the goal with a retry loop:
    // 0 ->(a) 1, 1 ->(b) goal, 1 ->(c) 0.
    // h1 = 1/(b+c) + c/(b+c) h0 ; h0 = 1/a + h1.
    const double a = 2.0, b = 1.0, c = 3.0;
    Ctmc chain(3);
    chain.add_rate(0, 1, a);
    chain.add_rate(1, 2, b);
    chain.add_rate(1, 0, c);
    const std::vector<char> targets{0, 0, 1};
    const auto h = expected_hitting_times(chain, targets);
    const double h0 = ((1.0 / (b + c)) + (c / (b + c)) * (1.0 / a)) / (b / (b + c)) +
                      1.0 / a;
    // Derive directly: h0 = 1/a + h1; h1 = 1/(b+c) + (c/(b+c)) h0
    // => h0 (1 - c/(b+c)) = 1/a + 1/(b+c) - (c/(b+c))/a ... solve numerically:
    const double h1 = (1.0 / (b + c) + (c / (b + c)) * (1.0 / a)) / (b / (b + c));
    EXPECT_NEAR(h[1], h1, 1e-10);
    EXPECT_NEAR(h[0], 1.0 / a + h1, 1e-10);
    (void)h0;
}

TEST(HittingTimes, UnreachableTargetIsInfinite) {
    Ctmc chain(3);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(1, 0, 1.0);
    // state 2 is the target but nothing reaches it.
    const std::vector<char> targets{0, 0, 1};
    const auto h = expected_hitting_times(chain, targets);
    EXPECT_TRUE(std::isinf(h[0]));
    EXPECT_TRUE(std::isinf(h[1]));
    EXPECT_DOUBLE_EQ(h[2], 0.0);
}

TEST(HittingTimes, PossibleEscapeMakesExpectationInfinite) {
    // 0 can go to the target or to an absorbing trap: P(hit) < 1 => infinite
    // expected hitting time.
    Ctmc chain(3);
    chain.add_rate(0, 1, 1.0);  // target
    chain.add_rate(0, 2, 1.0);  // trap (absorbing)
    const std::vector<char> targets{0, 1, 0};
    const auto h = expected_hitting_times(chain, targets);
    EXPECT_TRUE(std::isinf(h[0]));
    EXPECT_TRUE(std::isinf(h[2]));
}

TEST(HittingTimes, DenseAndIterativeAgree) {
    Ctmc chain(12);
    for (TangibleId i = 0; i + 1 < 12; ++i) {
        chain.add_rate(i, i + 1, 1.0 + i * 0.3);
        chain.add_rate(i + 1, i, 0.7);
    }
    std::vector<char> targets(12, 0);
    targets[11] = 1;
    const auto dense = expected_hitting_times(chain, targets, 1500);
    const auto iterative = expected_hitting_times(chain, targets, 0);
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_NEAR(dense[i], iterative[i], 1e-6 * (1.0 + dense[i]));
    }
}

TEST(HittingTimes, RejectsEmptyTargetSet) {
    Ctmc chain(2);
    chain.add_rate(0, 1, 1.0);
    EXPECT_THROW((void)expected_hitting_times(chain, {0, 0}), Error);
    EXPECT_THROW((void)expected_hitting_times(chain, {0}), Error);
}

TEST(HittingProbabilities, SplitBetweenTargetAndTrap) {
    Ctmc chain(3);
    chain.add_rate(0, 1, 3.0);  // target with rate 3
    chain.add_rate(0, 2, 1.0);  // trap with rate 1
    const std::vector<char> targets{0, 1, 0};
    const auto p = hitting_probabilities(chain, targets);
    EXPECT_NEAR(p[0], 0.75, 1e-10);
    EXPECT_DOUBLE_EQ(p[1], 1.0);
    EXPECT_DOUBLE_EQ(p[2], 0.0);
}

TEST(HittingProbabilities, CertainWhenNoTrapExists) {
    Ctmc chain(3);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(1, 0, 5.0);
    chain.add_rate(1, 2, 1.0);
    const std::vector<char> targets{0, 0, 1};
    const auto p = hitting_probabilities(chain, targets);
    EXPECT_NEAR(p[0], 1.0, 1e-9);
    EXPECT_NEAR(p[1], 1.0, 1e-9);
}

TEST(HittingTimes, StreamingTimeToFirstApOverflowShrinksWithAwakePeriod) {
    // "How long until the AP buffer first fills up?" — the longer the NIC
    // sleeps, the sooner the AP saturates.  Exact first-passage analysis on
    // the Markovian model, from the initial state.
    const auto analyse = [](double period) {
        const adl::ComposedModel model =
            models::streaming::compose(models::streaming::markovian(period, true));
        const MarkovModel markov = build_markov(model);
        const auto full_mask =
            adl::state_mask(model, adl::InStatePredicate{"AP", "AP_Buffer(10,"});
        std::vector<char> targets(markov.chain.num_states(), 0);
        for (TangibleId t = 0; t < markov.chain.num_states(); ++t) {
            targets[t] = full_mask[markov.orig_of[t]];
        }
        const auto h = expected_hitting_times(markov.chain, targets, 0);
        // Average over the initial distribution.
        double expected = 0.0;
        for (const auto& [state, prob] : markov.initial_distribution) {
            expected += prob * h[state];
        }
        return expected;
    };
    const double slow = analyse(100.0);
    const double fast = analyse(600.0);
    EXPECT_GT(slow, 0.0);
    EXPECT_LT(fast, slow);
    EXPECT_TRUE(std::isfinite(slow));
}

}  // namespace
}  // namespace dpma::ctmc
