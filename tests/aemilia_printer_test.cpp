#include <gtest/gtest.h>

#include "adl/compose.hpp"
#include "aemilia/parser.hpp"
#include "aemilia/printer.hpp"
#include "aemilia/lexer.hpp"
#include "bisim/equivalence.hpp"
#include "core/error.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/rpc.hpp"
#include "models/streaming.hpp"

namespace dpma::aemilia {
namespace {

/// parse(print(M)) must compose to a system strongly bisimilar to M's.
void expect_roundtrip_bisimilar(const adl::ArchiType& archi) {
    const std::string text = to_aemilia(archi);
    const adl::ArchiType reparsed = parse_archi_type(text);
    EXPECT_EQ(reparsed.name, archi.name);
    const adl::ComposedModel original = adl::compose(archi);
    const adl::ComposedModel round = adl::compose(reparsed);
    EXPECT_EQ(original.graph.num_states(), round.graph.num_states());
    EXPECT_TRUE(bisim::strongly_bisimilar(original.graph, round.graph).equivalent)
        << text;
}

TEST(Printer, RpcSimplifiedFunctionalRoundTrips) {
    expect_roundtrip_bisimilar(models::rpc::build(models::rpc::simplified_functional()));
}

TEST(Printer, RpcRevisedFunctionalRoundTrips) {
    expect_roundtrip_bisimilar(models::rpc::build(models::rpc::revised_functional()));
}

TEST(Printer, RpcMarkovianRoundTrips) {
    expect_roundtrip_bisimilar(models::rpc::build(models::rpc::markovian(5.0, true)));
}

TEST(Printer, RpcGeneralRoundTrips) {
    expect_roundtrip_bisimilar(models::rpc::build(models::rpc::general(7.5, true)));
}

TEST(Printer, StreamingMarkovianRoundTrips) {
    expect_roundtrip_bisimilar(
        models::streaming::build(models::streaming::markovian(100.0, true)));
}

TEST(Printer, StreamingGeneralRoundTrips) {
    expect_roundtrip_bisimilar(
        models::streaming::build(models::streaming::general(50.0, false)));
}

TEST(Printer, RatesSurviveWithFullPrecision) {
    // Compare solved measures of original and reparsed rpc Markov models;
    // %.17g rate printing must make them bit-compatible (or very nearly).
    const adl::ArchiType archi = models::rpc::build(models::rpc::markovian(5.0, true));
    const adl::ArchiType reparsed = parse_archi_type(to_aemilia(archi));

    const auto solve = [](const adl::ArchiType& a) {
        const adl::ComposedModel model = adl::compose(a);
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto pi = ctmc::steady_state(markov.chain);
        std::vector<double> out;
        for (const auto& m : models::rpc::measures()) {
            out.push_back(ctmc::evaluate_measure(markov, model, pi, m));
        }
        return out;
    };
    const auto a = solve(archi);
    const auto b = solve(reparsed);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i], b[i], 1e-12 * std::abs(a[i]) + 1e-15);
    }
}

TEST(Printer, GuardsRoundTripThroughConcreteSyntax) {
    // The streaming access point exercises ==, <, > and && in guards.
    const adl::ArchiType archi =
        models::streaming::build(models::streaming::functional(3));
    const std::string text = to_aemilia(archi);
    EXPECT_NE(text.find("cond("), std::string::npos);
    EXPECT_NE(text.find("&&"), std::string::npos);
    EXPECT_NO_THROW((void)parse_archi_type(text));
}

TEST(Printer, MeasuresRoundTrip) {
    const auto original = models::streaming::measures();
    const std::string text = to_measure_language(original);
    const auto reparsed = parse_measures(text);
    ASSERT_EQ(reparsed.size(), original.size());
    for (std::size_t m = 0; m < original.size(); ++m) {
        EXPECT_EQ(reparsed[m].name, original[m].name);
        ASSERT_EQ(reparsed[m].clauses.size(), original[m].clauses.size());
        for (std::size_t c = 0; c < original[m].clauses.size(); ++c) {
            EXPECT_EQ(reparsed[m].clauses[c].target, original[m].clauses[c].target);
            EXPECT_DOUBLE_EQ(reparsed[m].clauses[c].reward,
                             original[m].clauses[c].reward);
        }
    }
}

TEST(Printer, ScientificNotationNumbersAreLexable) {
    const auto tokens = tokenize("exp(1.0000000000000001e-05)");
    ASSERT_GE(tokens.size(), 3u);
    EXPECT_EQ(tokens[2].kind, TokenKind::Number);
    EXPECT_EQ(tokens[2].text, "1.0000000000000001e-05");
}

}  // namespace
}  // namespace dpma::aemilia
