#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adl/compose.hpp"
#include "aemilia/parser.hpp"
#include "analysis/diag.hpp"
#include "analysis/flow/analyze.hpp"
#include "analysis/flow/interval.hpp"
#include "analysis/flow/transparency.hpp"
#include "noninterference/noninterference.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

#ifndef DPMA_SPECS_DIR
#error "DPMA_SPECS_DIR must point at the shipped specs/ directory"
#endif
#ifndef DPMA_ANALYSIS_FIXTURE_DIR
#error "DPMA_ANALYSIS_FIXTURE_DIR must point at tests/fixtures/analysis"
#endif

namespace dpma::analysis::flow {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string key(const std::string& code, int line, int column) {
    return code + " @ " + std::to_string(line) + ":" + std::to_string(column);
}

/// `// expect: <code> @ <line>:<col>` annotations of a fixture.
std::vector<std::string> expectations(const std::string& text) {
    std::vector<std::string> out;
    std::istringstream lines(text);
    std::string line;
    const std::string marker = "// expect: ";
    while (std::getline(lines, line)) {
        const std::size_t at = line.find(marker);
        if (at == std::string::npos) continue;
        std::string spec = line.substr(at + marker.size());
        while (!spec.empty() && (spec.back() == '\r' || spec.back() == ' ')) {
            spec.pop_back();
        }
        out.push_back(spec);
    }
    return out;
}

std::vector<fs::path> fixture_files() {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(DPMA_ANALYSIS_FIXTURE_DIR)) {
        if (entry.path().extension() == ".aem") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    EXPECT_FALSE(files.empty());
    return files;
}

// --- negative fixtures: exact diagnostic multisets ---------------------------

TEST(FlowFixtures, EveryFixtureEmitsExactlyItsExpectedDiagnostics) {
    for (const fs::path& path : fixture_files()) {
        const std::string text = read_file(path);
        const AnalyzeResult result = analyze_text(text, path.string());
        std::vector<std::string> expected = expectations(text);
        std::vector<std::string> actual;
        for (const Diagnostic& d : result.all()) {
            actual.push_back(key(code_name(d.code), d.span.loc.line, d.span.loc.column));
        }
        std::sort(expected.begin(), expected.end());
        std::sort(actual.begin(), actual.end());
        EXPECT_EQ(actual, expected) << path;
    }
}

TEST(FlowFixtures, DiagnosticsCarrySpansAndSeverities) {
    for (const fs::path& path : fixture_files()) {
        const AnalyzeResult result = analyze_text(read_file(path), path.string());
        for (const Diagnostic& d : result.all()) {
            EXPECT_EQ(d.severity, code_severity(d.code)) << path;
            EXPECT_GE(d.span.loc.line, 1) << code_name(d.code) << " in " << path;
            EXPECT_GE(d.span.loc.column, 1) << code_name(d.code) << " in " << path;
            EXPECT_FALSE(d.span.file.empty()) << path;
            EXPECT_FALSE(d.message.empty()) << path;
        }
    }
}

// --- golden: every shipped spec is analyze-clean -----------------------------

struct SpecPair {
    const char* spec;
    const char* measures;  // nullptr = model only
};

const SpecPair kShippedSpecs[] = {
    {"rpc_untimed.aem", nullptr},
    {"rpc_revised_markov.aem", "rpc_measures.msr"},
    {"rpc_general.aem", "rpc_measures.msr"},
    {"disk_markov.aem", "disk_measures.msr"},
    {"streaming_markov.aem", nullptr},
};

TEST(FlowGolden, ShippedSpecificationsAreAnalyzeClean) {
    for (const SpecPair& pair : kShippedSpecs) {
        const fs::path spec = fs::path(DPMA_SPECS_DIR) / pair.spec;
        AnalyzeResult result;
        if (pair.measures == nullptr) {
            result = analyze_text(read_file(spec), spec.string());
        } else {
            const fs::path measures = fs::path(DPMA_SPECS_DIR) / pair.measures;
            result = analyze_text(read_file(spec), spec.string(),
                                  read_file(measures), measures.string());
        }
        EXPECT_TRUE(result.flow_ran) << pair.spec;
        EXPECT_TRUE(result.clean())
            << pair.spec << " is not analyze-clean:\n" << render_text(result.all());
    }
}

// --- transparency: static verdict vs. the exact weak-bisimulation oracle -----

struct TransparencyCase {
    const char* spec;
    std::vector<std::string> high;
    const char* low;
    bool oracle_passes;
};

const TransparencyCase kTransparencyCases[] = {
    {"rpc_untimed.aem", {"DPM.send_shutdown#S.receive_shutdown"}, "C", false},
    {"rpc_revised_markov.aem", {"DPM.send_shutdown#S.receive_shutdown"}, "C", true},
    {"rpc_general.aem", {"DPM.send_shutdown#S.receive_shutdown"}, "C", true},
    {"disk_markov.aem", {"DPM.send_shutdown#D.receive_shutdown"}, "SINK", true},
    {"streaming_markov.aem",
     {"DPM.send_shutdown#NIC.receive_shutdown", "DPM.send_wakeup#NIC.receive_wakeup"},
     "C", true},
};

/// The load-bearing guarantee of the whole engine: on every shipped spec the
/// static verdict agrees with the exact check — `transparent` only when the
/// oracle passes (soundness), and the oracle's failures never come back as
/// `transparent`.  The slice must also be a *proper* sub-architecture, or
/// "without building the product" would be vacuous.
TEST(Transparency, StaticVerdictAgreesWithExactOracleOnEveryShippedSpec) {
    for (const TransparencyCase& test_case : kTransparencyCases) {
        const fs::path spec = fs::path(DPMA_SPECS_DIR) / test_case.spec;
        const adl::ArchiType archi =
            aemilia::parse_archi_type_unchecked(read_file(spec));

        TransparencyOptions options;
        options.high_labels = test_case.high;
        options.low_instance = test_case.low;
        const TransparencyResult verdict = analyze_transparency(archi, options);

        const adl::ComposedModel model = adl::compose(archi);
        const noninterference::Result oracle = noninterference::check_dpm_transparency(
            model, test_case.high, test_case.low);
        ASSERT_EQ(oracle.noninterfering, test_case.oracle_passes) << test_case.spec;

        if (test_case.oracle_passes) {
            EXPECT_EQ(verdict.verdict, TransparencyVerdict::Transparent)
                << test_case.spec << ": " << verdict.reason;
        } else {
            // Soundness: the static engine must never claim transparency the
            // exact check refutes.
            EXPECT_NE(verdict.verdict, TransparencyVerdict::Transparent)
                << test_case.spec << ": " << verdict.reason;
        }
        if (verdict.verdict == TransparencyVerdict::Transparent) {
            EXPECT_LT(verdict.slice_instances.size(), archi.instances.size())
                << test_case.spec << ": slice is the whole architecture";
            EXPECT_LT(verdict.slice_states, model.graph.num_states())
                << test_case.spec << ": slice product larger than the full LTS";
        }
        EXPECT_FALSE(verdict.reason.empty()) << test_case.spec;
    }
}

TEST(Transparency, LeaksCarriesTheInteractionChainToTheObserver) {
    const fs::path spec = fs::path(DPMA_SPECS_DIR) / "rpc_untimed.aem";
    const adl::ArchiType archi = aemilia::parse_archi_type_unchecked(read_file(spec));
    TransparencyOptions options;
    options.high_labels = {"DPM.send_shutdown#S.receive_shutdown"};
    options.low_instance = "C";
    const TransparencyResult verdict = analyze_transparency(archi, options);
    ASSERT_EQ(verdict.verdict, TransparencyVerdict::Leaks) << verdict.reason;
    ASSERT_FALSE(verdict.leak_chain.empty());
    // The chain must end at an attachment touching the observer.
    EXPECT_NE(verdict.leak_chain.back().find("C."), std::string::npos);
}

TEST(Transparency, RejectsUnknownInstancesAndMalformedLabels) {
    const fs::path spec = fs::path(DPMA_SPECS_DIR) / "rpc_untimed.aem";
    const adl::ArchiType archi = aemilia::parse_archi_type_unchecked(read_file(spec));
    TransparencyOptions options;
    options.high_labels = {"DPM.send_shutdown#S.receive_shutdown"};
    options.low_instance = "NoSuchInstance";
    EXPECT_THROW((void)analyze_transparency(archi, options), Error);
    options.low_instance = "C";
    options.high_labels = {"not-a-label"};
    EXPECT_THROW((void)analyze_transparency(archi, options), Error);
}

// --- interval lattice unit checks --------------------------------------------

TEST(IntervalLattice, JoinMeetAndEmptiness) {
    const Interval a{0, 4};
    const Interval b{2, 8};
    EXPECT_EQ(interval_join(a, b), (Interval{0, 8}));
    EXPECT_EQ(interval_meet(a, b), (Interval{2, 4}));
    EXPECT_TRUE(interval_meet(Interval{0, 1}, Interval{3, 4}).empty());
    EXPECT_TRUE(Interval{}.empty());
    EXPECT_FALSE(Interval::top().bounded());
    EXPECT_TRUE(Interval::constant(7).bounded());
}

// --- observability ------------------------------------------------------------

TEST(FlowCounters, FixpointIterationsAreCounted) {
    const fs::path spec = fs::path(DPMA_SPECS_DIR) / "streaming_markov.aem";
    obs::Counter& iters = obs::counter("analysis.flow.fixpoint_iters");
    const std::uint64_t before = iters.value();
    const AnalyzeResult result = analyze_text(read_file(spec), spec.string());
    EXPECT_TRUE(result.flow_ran);
    EXPECT_GT(iters.value(), before);
}

TEST(FlowCounters, ProvedTransparencyIsCounted) {
    const fs::path spec = fs::path(DPMA_SPECS_DIR) / "rpc_revised_markov.aem";
    const adl::ArchiType archi = aemilia::parse_archi_type_unchecked(read_file(spec));
    obs::Counter& proved = obs::counter("analysis.transparency.proved");
    const std::uint64_t before = proved.value();
    TransparencyOptions options;
    options.high_labels = {"DPM.send_shutdown#S.receive_shutdown"};
    options.low_instance = "C";
    const TransparencyResult verdict = analyze_transparency(archi, options);
    ASSERT_EQ(verdict.verdict, TransparencyVerdict::Transparent);
    EXPECT_EQ(proved.value(), before + 1);
}

// --- renderers ----------------------------------------------------------------

TEST(FlowRender, SarifIsStrictJsonAndCarriesRulesAndResults) {
    for (const fs::path& path : fixture_files()) {
        const AnalyzeResult result = analyze_text(read_file(path), path.string());
        const std::string sarif = render_sarif(result.all(), "dpma-analyze");
        std::string error;
        EXPECT_TRUE(obs::json_valid(sarif, &error)) << path << ": " << error;
        EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos) << path;
        EXPECT_NE(sarif.find("dpma-analyze"), std::string::npos) << path;
        for (const Diagnostic& d : result.all()) {
            EXPECT_NE(sarif.find(code_name(d.code)), std::string::npos)
                << path << " misses rule " << code_name(d.code);
        }
    }
}

}  // namespace
}  // namespace dpma::analysis::flow
