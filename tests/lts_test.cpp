#include <gtest/gtest.h>

#include "core/error.hpp"
#include "lts/lts.hpp"
#include "lts/ops.hpp"

namespace dpma::lts {
namespace {

/// a -> b -> c with a tau detour.
Lts make_chain() {
    Lts m;
    const StateId s0 = m.add_state("s0");
    const StateId s1 = m.add_state("s1");
    const StateId s2 = m.add_state("s2");
    m.add_transition(s0, m.action("a"), s1);
    m.add_transition(s1, m.action("b"), s2);
    m.add_transition(s0, m.actions()->tau(), s2);
    m.set_initial(s0);
    return m;
}

TEST(ActionTable, TauIsPreInternedAsZero) {
    ActionTable table;
    EXPECT_EQ(table.tau(), 0u);
    EXPECT_EQ(table.name(table.tau()), "tau");
    EXPECT_EQ(table.intern("tau"), table.tau());
}

TEST(Lts, CountsStatesAndTransitions) {
    const Lts m = make_chain();
    EXPECT_EQ(m.num_states(), 3u);
    EXPECT_EQ(m.num_transitions(), 3u);
    EXPECT_EQ(m.initial(), 0u);
    EXPECT_EQ(m.out(0).size(), 2u);
    EXPECT_EQ(m.out(2).size(), 0u);
}

TEST(Lts, RejectsOutOfRangeEndpoints) {
    Lts m;
    const StateId s = m.add_state();
    EXPECT_THROW(m.add_transition(s, m.action("a"), 5), Error);
    EXPECT_THROW(m.set_initial(9), Error);
    EXPECT_THROW((void)m.out(1), Error);
}

TEST(Lts, StateNamesAreStored) {
    Lts m;
    const StateId s = m.add_state("hello");
    EXPECT_EQ(m.state_name(s), "hello");
    m.set_state_name(s, "world");
    EXPECT_EQ(m.state_name(s), "world");
}

TEST(Lts, SetRateReplacesAnnotation) {
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    m.add_transition(s0, m.action("a"), s1, RateExp{2.0});
    m.set_rate(s0, 0, RateExp{5.0});
    const auto* r = std::get_if<RateExp>(&m.out(s0)[0].rate);
    ASSERT_NE(r, nullptr);
    EXPECT_DOUBLE_EQ(r->rate, 5.0);
}

TEST(Lts, DumpMentionsActionsAndRates) {
    Lts m;
    const StateId s0 = m.add_state("start");
    m.add_transition(s0, m.action("ping"), s0, RateExp{1.5});
    m.set_initial(s0);
    const std::string dump = m.dump();
    EXPECT_NE(dump.find("ping"), std::string::npos);
    EXPECT_NE(dump.find("start"), std::string::npos);
}

TEST(RatePredicates, ClassifyVariants) {
    EXPECT_TRUE(is_passive(Rate{RatePassive{}}));
    EXPECT_TRUE(is_immediate(Rate{RateImmediate{1, 2.0}}));
    EXPECT_TRUE(is_exponential(Rate{RateExp{3.0}}));
    EXPECT_TRUE(is_general(Rate{RateGeneral{Dist::deterministic(1.0)}}));
    EXPECT_TRUE(is_timed(Rate{RateExp{3.0}}));
    EXPECT_TRUE(is_timed(Rate{RateGeneral{Dist::deterministic(1.0)}}));
    EXPECT_FALSE(is_timed(Rate{RateImmediate{}}));
    EXPECT_FALSE(is_timed(Rate{RateUnspecified{}}));
}

TEST(Hide, RelabelsToTauAndKeepsRates) {
    Lts m = make_chain();
    const Lts hidden = hide(m, {m.actions()->find("a")});
    EXPECT_EQ(hidden.out(0)[0].action, m.actions()->tau());
    EXPECT_EQ(hidden.out(1)[0].action, m.actions()->find("b"));
    EXPECT_EQ(hidden.num_transitions(), 3u);
}

TEST(Restrict, RemovesMatchingTransitions) {
    Lts m = make_chain();
    const Lts restricted = restrict_actions(m, {m.actions()->find("a")});
    EXPECT_EQ(restricted.num_transitions(), 2u);
    EXPECT_TRUE(restricted.out(0).size() == 1u);  // only the tau remains
}

TEST(ReachablePart, PrunesUnreachableStates) {
    Lts m;
    const StateId s0 = m.add_state("root");
    const StateId s1 = m.add_state("child");
    m.add_state("orphan");
    m.add_transition(s0, m.action("a"), s1);
    m.set_initial(s0);
    const Lts pruned = reachable_part(m);
    EXPECT_EQ(pruned.num_states(), 2u);
    EXPECT_EQ(pruned.state_name(0), "root");
    EXPECT_EQ(pruned.state_name(1), "child");
}

TEST(ReachablePart, KeepsAllTransitionsAmongReachable) {
    Lts m = make_chain();
    const Lts pruned = reachable_part(m);
    EXPECT_EQ(pruned.num_states(), m.num_states());
    EXPECT_EQ(pruned.num_transitions(), m.num_transitions());
}

TEST(DeadlockStates, FindsSinks) {
    const Lts m = make_chain();
    const auto sinks = deadlock_states(m);
    ASSERT_EQ(sinks.size(), 1u);
    EXPECT_EQ(sinks[0], 2u);
}

TEST(Saturate, AddsReflexiveTau) {
    Lts m;
    const StateId s0 = m.add_state();
    m.set_initial(s0);
    const Lts sat = saturate(m);
    ASSERT_EQ(sat.out(s0).size(), 1u);
    EXPECT_EQ(sat.out(s0)[0].action, m.actions()->tau());
    EXPECT_EQ(sat.out(s0)[0].target, s0);
}

TEST(Saturate, ComputesWeakVisibleMoves) {
    // s0 -tau-> s1 -a-> s2 -tau-> s3: s0 must get a weak a to both s2 and s3.
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    const StateId s2 = m.add_state();
    const StateId s3 = m.add_state();
    const ActionId tau = m.actions()->tau();
    const ActionId a = m.action("a");
    m.add_transition(s0, tau, s1);
    m.add_transition(s1, a, s2);
    m.add_transition(s2, tau, s3);
    m.set_initial(s0);

    const Lts sat = saturate(m);
    bool weak_a_to_s2 = false;
    bool weak_a_to_s3 = false;
    for (const Transition& t : sat.out(s0)) {
        if (t.action == a && t.target == s2) weak_a_to_s2 = true;
        if (t.action == a && t.target == s3) weak_a_to_s3 = true;
    }
    EXPECT_TRUE(weak_a_to_s2);
    EXPECT_TRUE(weak_a_to_s3);
}

TEST(Saturate, TauChainsBecomeDirectWeakTaus) {
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    const StateId s2 = m.add_state();
    const ActionId tau = m.actions()->tau();
    m.add_transition(s0, tau, s1);
    m.add_transition(s1, tau, s2);
    m.set_initial(s0);
    const Lts sat = saturate(m);
    bool direct = false;
    for (const Transition& t : sat.out(s0)) {
        if (t.action == tau && t.target == s2) direct = true;
    }
    EXPECT_TRUE(direct);
}

TEST(DisjointUnion, MergesActionTablesByName) {
    Lts a;
    const StateId a0 = a.add_state();
    a.add_transition(a0, a.action("ping"), a0);
    a.set_initial(a0);

    Lts b;  // independent table: "pong" before "ping"
    const StateId b0 = b.add_state();
    b.add_transition(b0, b.action("pong"), b0);
    b.add_transition(b0, b.action("ping"), b0);
    b.set_initial(b0);

    const UnionResult u = disjoint_union(a, b);
    EXPECT_EQ(u.combined.num_states(), 2u);
    EXPECT_EQ(u.initial_lhs, 0u);
    EXPECT_EQ(u.initial_rhs, 1u);
    // Both ping transitions must carry the same merged id.
    EXPECT_EQ(u.combined.out(u.initial_lhs)[0].action,
              u.combined.out(u.initial_rhs)[1].action);
}

TEST(Csr, FreezeMirrorsAdjacency) {
    Lts m = make_chain();
    EXPECT_FALSE(m.is_frozen());
    const Lts::CsrView& csr = m.csr();  // freezes lazily
    EXPECT_TRUE(m.is_frozen());
    ASSERT_EQ(csr.num_states(), m.num_states());
    EXPECT_EQ(csr.transitions().size(), m.num_transitions());
    for (StateId s = 0; s < m.num_states(); ++s) {
        const auto row = csr.out(s);
        const auto adj = m.out(s);
        ASSERT_EQ(row.size(), adj.size());
        for (std::size_t k = 0; k < row.size(); ++k) {
            EXPECT_EQ(row[k].action, adj[k].action);
            EXPECT_EQ(row[k].target, adj[k].target);
        }
    }
    EXPECT_EQ(csr.offsets().size(), m.num_states() + 1);
    EXPECT_EQ(csr.offsets().front(), 0u);
    EXPECT_EQ(csr.offsets().back(), m.num_transitions());
}

TEST(Csr, MutationInvalidatesFrozenView) {
    Lts m = make_chain();
    m.freeze();
    ASSERT_TRUE(m.is_frozen());
    const StateId extra = m.add_state();
    EXPECT_FALSE(m.is_frozen());  // add_state drops the cache

    m.freeze();
    m.add_transition(0, m.action("a"), extra);
    EXPECT_FALSE(m.is_frozen());  // add_transition drops the cache

    m.freeze();
    m.set_rate(0, 0, RateExp{2.0});
    EXPECT_FALSE(m.is_frozen());  // set_rate drops the cache

    // The rebuilt view reflects the mutations.
    const Lts::CsrView& csr = m.csr();
    EXPECT_EQ(csr.num_states(), m.num_states());
    EXPECT_EQ(csr.transitions().size(), m.num_transitions());
}

TEST(Csr, CopiesOfFrozenSourcesOwnTheirStorage) {
    Lts m = make_chain();
    m.freeze();
    Lts copy = m;
    EXPECT_TRUE(m.is_frozen());    // source keeps its view
    EXPECT_TRUE(copy.is_frozen());  // frozen source -> CSR-backed copy
    // The copy's view is its own storage, not an alias of the source's.
    EXPECT_NE(copy.csr().transitions().data(), m.csr().transitions().data());
    // Rate patches land in the copy only.
    copy.set_rate(0, 0, RateExp{9.0});
    EXPECT_EQ(copy.out(0)[0].rate, Rate{RateExp{9.0}});
    EXPECT_NE(m.out(0)[0].rate, Rate{RateExp{9.0}});
    // Structural mutation re-materialises the adjacency and drops the view.
    copy.add_state();
    EXPECT_EQ(copy.num_states(), m.num_states() + 1);
    EXPECT_EQ(copy.out(0)[0].rate, Rate{RateExp{9.0}});  // patch survives thaw
    EXPECT_EQ(copy.csr().num_states(), m.csr().num_states() + 1);
}

TEST(Csr, CopiesOfUnfrozenSourcesStartThawed) {
    Lts m = make_chain();
    Lts copy = m;
    EXPECT_FALSE(copy.is_frozen());
    copy.add_state();
    EXPECT_EQ(copy.num_states(), m.num_states() + 1);
}

TEST(MakeActionSet, InternsNames) {
    Lts m = make_chain();
    const ActionSet set = make_action_set(m, {"a", "brand_new"});
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.contains(m.actions()->find("a")));
    EXPECT_TRUE(set.contains(m.actions()->find("brand_new")));
}

}  // namespace
}  // namespace dpma::lts
