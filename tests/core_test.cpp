#include <gtest/gtest.h>

#include <cmath>

#include "core/dist.hpp"
#include "core/error.hpp"
#include "core/intern.hpp"
#include "core/stats_math.hpp"
#include "core/text.hpp"

namespace dpma {
namespace {

TEST(Interner, AssignsDenseIdsInOrder) {
    StringInterner interner;
    EXPECT_EQ(interner.intern("alpha"), 0u);
    EXPECT_EQ(interner.intern("beta"), 1u);
    EXPECT_EQ(interner.intern("gamma"), 2u);
    EXPECT_EQ(interner.size(), 3u);
}

TEST(Interner, InternIsIdempotent) {
    StringInterner interner;
    const Symbol a = interner.intern("x");
    EXPECT_EQ(interner.intern("x"), a);
    EXPECT_EQ(interner.size(), 1u);
}

TEST(Interner, FindDoesNotInsert) {
    StringInterner interner;
    EXPECT_EQ(interner.find("missing"), kNoSymbol);
    EXPECT_EQ(interner.size(), 0u);
}

TEST(Interner, RoundTripsText) {
    StringInterner interner;
    const Symbol a = interner.intern("some.label#with.parts");
    EXPECT_EQ(interner.text(a), "some.label#with.parts");
}

TEST(Interner, TextOutOfRangeThrows) {
    StringInterner interner;
    EXPECT_THROW((void)interner.text(0), Error);
}

TEST(Interner, SurvivesRehashing) {
    StringInterner interner;
    for (int i = 0; i < 2000; ++i) {
        interner.intern("key" + std::to_string(i));
    }
    // Views into the stored strings must remain valid after growth.
    EXPECT_EQ(interner.find("key0"), 0u);
    EXPECT_EQ(interner.find("key1999"), 1999u);
    EXPECT_EQ(interner.text(1234), "key1234");
}

TEST(Text, TrimStripsBothEnds) {
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(Text, SplitKeepsEmptyFields) {
    const auto parts = split("a##b#", '#');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Text, JoinInvertsSplit) {
    const std::vector<std::string> parts{"x", "y", "z"};
    EXPECT_EQ(join(parts, "."), "x.y.z");
    EXPECT_EQ(join({}, "."), "");
}

TEST(Text, FormatFixedIsLocaleIndependent) {
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

TEST(KahanSum, RecoversSmallAddendsLostByNaiveSummation) {
    KahanSum sum;
    sum.add(1e16);
    for (int i = 0; i < 10; ++i) sum.add(1.0);
    sum.add(-1e16);
    EXPECT_DOUBLE_EQ(sum.value(), 10.0);
}

TEST(RunningMoments, MatchesClosedForm) {
    RunningMoments m;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
    EXPECT_DOUBLE_EQ(m.mean(), 5.0);
    EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningMoments, VarianceOfFewerThanTwoSamplesIsZero) {
    RunningMoments m;
    EXPECT_EQ(m.variance(), 0.0);
    m.add(3.0);
    EXPECT_EQ(m.variance(), 0.0);
}

TEST(StudentT, MatchesTabulatedValues) {
    // Standard two-sided critical values.
    EXPECT_NEAR(student_t_critical(29, 0.90), 1.699, 1e-3);
    EXPECT_NEAR(student_t_critical(29, 0.95), 2.045, 1e-3);
    EXPECT_NEAR(student_t_critical(1, 0.95), 12.706, 1e-2);
    EXPECT_NEAR(student_t_critical(10, 0.99), 3.169, 1e-3);
    // Large df approaches the normal quantile.
    EXPECT_NEAR(student_t_critical(100000, 0.95), 1.960, 1e-3);
}

TEST(StudentT, RejectsInvalidArguments) {
    EXPECT_THROW((void)student_t_critical(0, 0.9), Error);
    EXPECT_THROW((void)student_t_critical(5, 0.0), Error);
    EXPECT_THROW((void)student_t_critical(5, 1.0), Error);
}

TEST(ConfidenceInterval, HalfWidthMatchesManualComputation) {
    const std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 5.0};
    const double s = std::sqrt(2.5);  // sample stddev
    const double expected = student_t_critical(4, 0.95) * s / std::sqrt(5.0);
    EXPECT_NEAR(confidence_half_width(samples, 0.95), expected, 1e-12);
}

TEST(ConfidenceInterval, DegenerateInputsGiveZeroWidth) {
    EXPECT_EQ(confidence_half_width({}, 0.9), 0.0);
    EXPECT_EQ(confidence_half_width({42.0}, 0.9), 0.0);
}

TEST(Dist, MeansMatchAnalyticFormulas) {
    EXPECT_DOUBLE_EQ(Dist::exponential(4.0).mean(), 0.25);
    EXPECT_DOUBLE_EQ(Dist::deterministic(3.5).mean(), 3.5);
    EXPECT_DOUBLE_EQ(Dist::uniform(1.0, 3.0).mean(), 2.0);
    EXPECT_DOUBLE_EQ(Dist::normal(0.8, 0.03).mean(), 0.8);
    EXPECT_DOUBLE_EQ(Dist::erlang(4, 2.0).mean(), 2.0);
    // Weibull with shape 1 is exponential with rate 1/scale.
    EXPECT_NEAR(Dist::weibull(1.0, 5.0).mean(), 5.0, 1e-12);
    EXPECT_NEAR(Dist::lognormal(0.0, 0.0).mean(), 1.0, 1e-12);
}

TEST(Dist, RejectsInvalidParameters) {
    EXPECT_THROW((void)Dist::exponential(0.0), Error);
    EXPECT_THROW((void)Dist::exponential(-1.0), Error);
    EXPECT_THROW((void)Dist::deterministic(-0.1), Error);
    EXPECT_THROW((void)Dist::uniform(2.0, 1.0), Error);
    EXPECT_THROW((void)Dist::normal(0.0, 1.0), Error);
    EXPECT_THROW((void)Dist::erlang(0, 1.0), Error);
    EXPECT_THROW((void)Dist::weibull(-1.0, 1.0), Error);
}

TEST(Dist, ToStringNamesTheFamily) {
    EXPECT_EQ(Dist::exponential(2.0).to_string().substr(0, 4), "exp(");
    EXPECT_EQ(Dist::normal(4.0, 0.1).to_string().substr(0, 5), "norm(");
}

TEST(ErrorHierarchy, AllErrorsDeriveFromDpmaError) {
    EXPECT_THROW(throw ModelError("m"), Error);
    EXPECT_THROW(throw NumericalError("n"), Error);
    EXPECT_THROW(throw ParseError("p", 1, 2), Error);
}

TEST(ErrorHierarchy, ParseErrorCarriesPosition) {
    const ParseError e("bad token", 7, 12);
    EXPECT_EQ(e.line(), 7);
    EXPECT_EQ(e.column(), 12);
}

TEST(Assertions, AssertMacroThrowsWithContext) {
    try {
        DPMA_ASSERT(1 == 2, "math is broken");
        FAIL() << "expected throw";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
    }
}

}  // namespace
}  // namespace dpma
