/// \file exp_resume_test.cpp
/// Fault-tolerant sweep execution: atomic artifact writes, per-index
/// failure isolation in the pool, failed-point records with retries,
/// checkpoint/resume byte-identity and torn-line tolerance, and the
/// interrupted/failed event stream.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "exp/checkpoint.hpp"
#include "exp/experiment.hpp"
#include "exp/pool.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "obs/atomic_write.hpp"
#include "obs/metrics.hpp"

namespace dpma::exp {
namespace {

std::string read_text(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// Unique scratch path per test; removed on construction so reruns start
/// clean and on destruction so the suite leaves no debris.
struct ScratchFile {
    explicit ScratchFile(const std::string& name)
        : path(::testing::TempDir() + "dpma_" + name) {
        std::remove(path.c_str());
    }
    ~ScratchFile() { std::remove(path.c_str()); }
    std::string path;
};

/// Deterministic synthetic sweep: values derived from the coordinate and
/// the per-point seed only, with half-widths and diagnostics so resume has
/// to replay every PointResult field byte-exactly.
Experiment make_experiment(std::size_t points = 8) {
    Experiment experiment;
    experiment.name = "resume demo";
    experiment.grid.axis(
        Axis::linspace("x", 1.0, static_cast<double>(points), points));
    experiment.measures = {"y", "z"};
    experiment.eval = [](const Point& point, const PointContext& context) {
        PointResult result;
        const double x = point.at("x");
        result.values = {2.0 * x, static_cast<double>(context.seed() % 1000)};
        result.half_widths = {0.5, 0.25};
        result.diagnostics = "{\"point\":" + std::to_string(point.index) + "}";
        return result;
    };
    return experiment;
}

TEST(AtomicWrite, ReplacesAtomicallyAndFailsWithThePath) {
    ScratchFile file("atomic_write_test.json");
    obs::atomic_write(file.path, "one");
    EXPECT_EQ(read_text(file.path), "one");
    obs::atomic_write(file.path, "two");
    EXPECT_EQ(read_text(file.path), "two");

    const std::string bad = "/nonexistent-dpma-dir/out.json";
    try {
        obs::atomic_write(bad, "x");
        FAIL() << "atomic_write into a missing directory must throw";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find(bad), std::string::npos) << e.what();
    }
}

TEST(AtomicWrite, LeavesNoTemporaryDebris) {
    ScratchFile file("atomic_debris_test.json");
    obs::atomic_write(file.path, "payload");
    // The temp name is <path>.tmp.<pid>; it must be gone after the rename.
    const std::string tmp = file.path + ".tmp." + std::to_string(::getpid());
    std::ifstream probe(tmp);
    EXPECT_FALSE(static_cast<bool>(probe)) << tmp;
}

TEST(AtomicWrite, DurableAppenderAppendsAcrossReopens) {
    ScratchFile file("appender_test.jsonl");
    {
        obs::DurableAppender appender(file.path);
        appender.append_line("{\"a\":1}");
        appender.append_line("{\"a\":2}");
    }
    {
        // A second writer (a resumed run) appends, never truncates.
        obs::DurableAppender appender(file.path);
        appender.append_line("{\"a\":3}");
    }
    EXPECT_EQ(read_text(file.path), "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n");
}

TEST(ThreadPool, RunCollectIsolatesFailuresPerIndex) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(16);
    const std::vector<std::exception_ptr> errors =
        pool.run_collect(hits.size(), [&](std::size_t i) {
            ++hits[i];
            if (i == 3 || i == 11) throw Error("boom " + std::to_string(i));
        });
    ASSERT_EQ(errors.size(), hits.size());
    for (std::size_t i = 0; i < hits.size(); ++i) {
        // Unlike run(), a failure cancels nothing: every index executed.
        EXPECT_EQ(hits[i].load(), 1) << i;
        EXPECT_EQ(static_cast<bool>(errors[i]), i == 3 || i == 11) << i;
    }
    try {
        std::rethrow_exception(errors[11]);
        FAIL();
    } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "boom 11");
    }
}

TEST(Runner, FailedPointBecomesARecordNotALostSweep) {
    Experiment experiment = make_experiment();
    const auto inner = experiment.eval;
    experiment.eval = [inner](const Point& point, const PointContext& context) {
        if (point.index == 2) throw NumericalError("solver diverged");
        return inner(point, context);
    };
    RunOptions options;
    options.jobs = 4;
    options.timing = false;
    const std::uint64_t failed_before = obs::counter("exp.point.failed").value();
    const RunOutcome outcome = run_sweep(experiment, options);
    EXPECT_EQ(obs::counter("exp.point.failed").value(), failed_before + 1);

    EXPECT_EQ(outcome.total, 8u);
    EXPECT_EQ(outcome.completed, 7u);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_FALSE(outcome.interrupted);
    EXPECT_FALSE(outcome.complete());
    ASSERT_EQ(outcome.results.size(), 8u);  // siblings are not discarded

    const PointRecord& failed = outcome.results.at(2);
    EXPECT_TRUE(failed.result.failed());
    EXPECT_EQ(failed.result.attempts, 1);
    EXPECT_NE(failed.result.error.find("NumericalError"), std::string::npos)
        << failed.result.error;
    EXPECT_NE(failed.result.error.find("solver diverged"), std::string::npos);
    for (const double v : failed.result.values) EXPECT_TRUE(std::isnan(v));

    const std::string json = outcome.results.json();
    EXPECT_NE(json.find("\"error\": "), std::string::npos);
    EXPECT_NE(json.find("\"attempts\": 1"), std::string::npos);

    // The compatibility wrapper still surfaces the original exception type.
    EXPECT_THROW((void)run(experiment, options), NumericalError);
}

TEST(Runner, RetryBudgetRecoversFlakyPoints) {
    std::atomic<int> first_attempts{0};
    Experiment experiment = make_experiment();
    const auto inner = experiment.eval;
    experiment.eval = [inner, &first_attempts](const Point& point,
                                               const PointContext& context) {
        if (point.index == 1 && first_attempts.fetch_add(1) == 0) {
            throw Error("flaky dependency");
        }
        return inner(point, context);
    };
    RunOptions options;
    options.jobs = 2;
    options.timing = false;
    options.retries = 2;
    const std::uint64_t retried_before = obs::counter("exp.point.retried").value();
    const RunOutcome outcome = run_sweep(experiment, options);
    EXPECT_EQ(obs::counter("exp.point.retried").value(), retried_before + 1);
    EXPECT_EQ(outcome.failed, 0u);
    EXPECT_TRUE(outcome.complete());
    EXPECT_EQ(outcome.results.at(1).result.attempts, 2);
    EXPECT_FALSE(outcome.results.at(1).result.failed());
}

void expect_resume_byte_identical(std::size_t jobs) {
    ScratchFile checkpoint("resume_ck_" + std::to_string(jobs) + ".jsonl");
    RunOptions base;
    base.jobs = jobs;
    base.timing = false;
    const ResultSet reference = run(make_experiment(), base);

    // Interrupted run: the stop flag goes up after the third evaluation, so
    // some points land in the checkpoint and some never start.
    std::atomic<bool> stop{false};
    std::atomic<int> evaluated{0};
    Experiment interruptible = make_experiment();
    const auto inner = interruptible.eval;
    interruptible.eval = [inner, &stop, &evaluated](const Point& point,
                                                    const PointContext& context) {
        PointResult result = inner(point, context);
        if (evaluated.fetch_add(1) + 1 >= 3) stop.store(true);
        return result;
    };
    RunOptions first = base;
    first.checkpoint_path = checkpoint.path;
    first.stop = &stop;
    const RunOutcome partial = run_sweep(interruptible, first);
    if (jobs == 1) {
        // Serial scheduling is deterministic: exactly 3 points ran, 5 were
        // skipped.  (At higher jobs counts in-flight points may finish.)
        EXPECT_TRUE(partial.interrupted);
        EXPECT_EQ(partial.results.size(), 3u);
        EXPECT_EQ(partial.skipped, 5u);
    }
    EXPECT_EQ(partial.failed, 0u);

    // Resumed run restores the checkpointed points and computes the rest;
    // the merged artifacts must be byte-identical to the uninterrupted run.
    RunOptions second = base;
    second.checkpoint_path = checkpoint.path;
    second.resume = true;
    const RunOutcome resumed = run_sweep(make_experiment(), second);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_GE(resumed.restored, 3u);
    EXPECT_EQ(resumed.restored + resumed.completed, resumed.total);
    EXPECT_EQ(resumed.results.json(), reference.json());
    EXPECT_EQ(resumed.results.csv(), reference.csv());
}

TEST(Checkpoint, ResumeIsByteIdenticalSerial) { expect_resume_byte_identical(1); }

TEST(Checkpoint, ResumeIsByteIdenticalParallel) { expect_resume_byte_identical(4); }

TEST(Checkpoint, FailedPointsRerunOnResume) {
    ScratchFile checkpoint("resume_failed_ck.jsonl");
    std::atomic<bool> faulty{true};
    Experiment experiment = make_experiment();
    const auto inner = experiment.eval;
    experiment.eval = [inner, &faulty](const Point& point,
                                       const PointContext& context) {
        if (point.index == 2 && faulty.load()) throw Error("flaky dependency");
        return inner(point, context);
    };
    RunOptions options;
    options.jobs = 2;
    options.timing = false;
    options.checkpoint_path = checkpoint.path;
    const RunOutcome first = run_sweep(experiment, options);
    EXPECT_EQ(first.failed, 1u);

    // The cause is fixed; resume recomputes exactly the failed point.
    faulty.store(false);
    options.resume = true;
    const RunOutcome second = run_sweep(experiment, options);
    EXPECT_EQ(second.failed, 0u);
    EXPECT_EQ(second.restored, 7u);
    EXPECT_EQ(second.completed, 1u);
    RunOptions plain;
    plain.jobs = 2;
    plain.timing = false;
    const ResultSet reference = run(make_experiment(), plain);
    EXPECT_EQ(second.results.json(), reference.json());
}

TEST(Checkpoint, RejectsMismatchedSweeps) {
    ScratchFile checkpoint("mismatch_ck.jsonl");
    RunOptions options;
    options.jobs = 1;
    options.timing = false;
    options.checkpoint_path = checkpoint.path;
    (void)run_sweep(make_experiment(), options);

    // Same file, different base seed: the records' seeds no longer match
    // the determinism contract, so restoring them would be silent poison.
    EXPECT_THROW((void)load_checkpoint(checkpoint.path, make_experiment(), 2), Error);
    Experiment renamed = make_experiment();
    renamed.name = "other sweep";
    EXPECT_THROW((void)load_checkpoint(checkpoint.path, renamed, 1), Error);
    Experiment smaller = make_experiment(4);
    smaller.name = "resume demo";
    EXPECT_THROW((void)load_checkpoint(checkpoint.path, smaller, 1), Error);

    // A missing file is not an error: the first run of an always-resume
    // script starts fresh.
    const CheckpointState fresh =
        load_checkpoint(checkpoint.path + ".does-not-exist", make_experiment(), 1);
    EXPECT_TRUE(fresh.finished.empty());
}

TEST(Checkpoint, ToleratesTornFinalLineButNotMidFileCorruption) {
    ScratchFile checkpoint("torn_ck.jsonl");
    RunOptions options;
    options.jobs = 1;
    options.timing = false;
    options.checkpoint_path = checkpoint.path;
    (void)run_sweep(make_experiment(), options);

    // A writer killed inside write(2) leaves a torn *final* line; the
    // loader must shrug it off and keep every complete record.
    {
        std::ofstream append(checkpoint.path, std::ios::binary | std::ios::app);
        append << "{\"type\":\"point\",\"ind";
    }
    const CheckpointState state =
        load_checkpoint(checkpoint.path, make_experiment(), 1);
    EXPECT_EQ(state.finished.size(), 8u);

    // The same garbage mid-file is corruption, not a torn tail.
    std::string text = read_text(checkpoint.path);
    text += "\n";  // terminate the torn line: now a complete, malformed line
    text += "{\"type\":\"sweep_checkpoint\"";
    std::ofstream rewrite(checkpoint.path, std::ios::binary | std::ios::trunc);
    rewrite << text;
    rewrite.close();
    EXPECT_THROW((void)load_checkpoint(checkpoint.path, make_experiment(), 1), Error);
}

TEST(Events, FailedPointsAndInterruptionsAreAnnounced) {
    Experiment experiment = make_experiment();
    const auto inner = experiment.eval;
    experiment.eval = [inner](const Point& point, const PointContext& context) {
        if (point.index == 1) throw Error("boom");
        return inner(point, context);
    };
    const auto capture = [&](std::size_t jobs) {
        std::vector<std::string> lines;
        RunOptions options;
        options.jobs = jobs;
        options.timing = false;
        options.events.timing = false;
        options.events.sink = [&](const std::string& line) {
            lines.push_back(line);
        };
        (void)run_sweep(experiment, options);
        return lines;
    };
    const std::vector<std::string> serial = capture(1);
    bool saw_failed = false;
    for (const std::string& line : serial) {
        if (line.find("\"type\":\"point_failed\"") == std::string::npos) continue;
        saw_failed = true;
        EXPECT_NE(line.find("\"index\":1"), std::string::npos) << line;
        EXPECT_NE(line.find("\"error\":"), std::string::npos) << line;
        EXPECT_NE(line.find("\"attempts\":1"), std::string::npos) << line;
    }
    EXPECT_TRUE(saw_failed);
    EXPECT_NE(serial.back().find("\"type\":\"sweep_finished\""), std::string::npos);
    EXPECT_NE(serial.back().find("\"failed\":1"), std::string::npos);
    // Failure events obey the same determinism contract as the rest of the
    // stream: bit-identical for any jobs count.
    EXPECT_EQ(serial, capture(8));

    // A sweep stopped before its first point closes with sweep_interrupted.
    std::atomic<bool> stop{true};
    std::vector<std::string> lines;
    RunOptions options;
    options.jobs = 2;
    options.timing = false;
    options.events.timing = false;
    options.events.sink = [&](const std::string& line) { lines.push_back(line); };
    options.stop = &stop;
    const RunOutcome outcome = run_sweep(make_experiment(), options);
    EXPECT_TRUE(outcome.interrupted);
    EXPECT_EQ(outcome.results.size(), 0u);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines.back().find("\"type\":\"sweep_interrupted\""), std::string::npos);
    EXPECT_NE(lines.back().find("\"completed\":0"), std::string::npos);
}

}  // namespace
}  // namespace dpma::exp
