#include <gtest/gtest.h>

#include <cmath>

#include "adl/compose.hpp"
#include "aemilia/parser.hpp"
#include "bisim/equivalence.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/rpc.hpp"
#include "models/disk.hpp"
#include "models/specs.hpp"
#include "models/streaming.hpp"
#include "noninterference/noninterference.hpp"

namespace dpma::models {
namespace {

double relative_error(double a, double b) {
    return std::abs(a - b) / std::max(std::abs(b), 1e-12);
}

TEST(Specs, RpcUntimedParses) {
    const adl::ArchiType archi = aemilia::parse_archi_type(rpc_untimed_spec());
    EXPECT_EQ(archi.name, "RPC_DPM_Untimed");
    EXPECT_EQ(archi.instances.size(), 5u);
}

TEST(Specs, RpcUntimedIsBisimilarToBuilder) {
    const adl::ComposedModel parsed =
        adl::compose(aemilia::parse_archi_type(rpc_untimed_spec()));
    const adl::ComposedModel built = rpc::compose(rpc::simplified_functional());
    EXPECT_TRUE(bisim::strongly_bisimilar(parsed.graph, built.graph).equivalent);
}

TEST(Specs, RpcUntimedFailsNoninterferenceLikeThePaper) {
    const adl::ComposedModel parsed =
        adl::compose(aemilia::parse_archi_type(rpc_untimed_spec()));
    const auto verdict = noninterference::check_dpm_transparency(
        parsed, rpc::high_action_labels(), "C");
    EXPECT_FALSE(verdict.noninterfering);
}

TEST(Specs, RpcRevisedMarkovParses) {
    const adl::ArchiType archi = aemilia::parse_archi_type(rpc_revised_markov_spec());
    EXPECT_EQ(archi.name, "RPC_DPM_Markov");
    EXPECT_EQ(archi.attachments.size(), 7u);
}

TEST(Specs, RpcRevisedMarkovIsBisimilarToBuilder) {
    const adl::ComposedModel parsed =
        adl::compose(aemilia::parse_archi_type(rpc_revised_markov_spec()));
    const adl::ComposedModel built = rpc::compose(rpc::markovian(5.0, true));
    EXPECT_TRUE(bisim::strongly_bisimilar(parsed.graph, built.graph).equivalent);
}

TEST(Specs, RpcRevisedMarkovMeasuresMatchBuilder) {
    // Parse the model *and* the measures from the Æmilia surface syntax and
    // solve; the result must agree with the C++-built model to the rate
    // rounding in the spec text (~1e-12 relative).
    const adl::ComposedModel parsed =
        adl::compose(aemilia::parse_archi_type(rpc_revised_markov_spec()));
    const auto parsed_measures = aemilia::parse_measures(rpc_measures_spec());
    const ctmc::MarkovModel parsed_markov = ctmc::build_markov(parsed);
    const auto parsed_pi = ctmc::steady_state(parsed_markov.chain);

    const adl::ComposedModel built = rpc::compose(rpc::markovian(5.0, true));
    const auto built_measures = rpc::measures();
    const ctmc::MarkovModel built_markov = ctmc::build_markov(built);
    const auto built_pi = ctmc::steady_state(built_markov.chain);

    ASSERT_EQ(parsed_measures.size(), built_measures.size());
    for (std::size_t m = 0; m < parsed_measures.size(); ++m) {
        const double a = ctmc::evaluate_measure(parsed_markov, parsed, parsed_pi,
                                                parsed_measures[m]);
        const double b = ctmc::evaluate_measure(built_markov, built, built_pi,
                                                built_measures[m]);
        EXPECT_LT(relative_error(a, b), 1e-9)
            << parsed_measures[m].name << ": " << a << " vs " << b;
    }
}

TEST(Specs, StreamingMarkovParses) {
    const adl::ArchiType archi = aemilia::parse_archi_type(streaming_markov_spec());
    EXPECT_EQ(archi.name, "Streaming_DPM_Markov");
    EXPECT_EQ(archi.instances.size(), 7u);
    EXPECT_EQ(archi.find_instance("AP")->args, (std::vector<long>{0, 10}));
}

TEST(Specs, StreamingMarkovIsBisimilarToBuilder) {
    const adl::ComposedModel parsed =
        adl::compose(aemilia::parse_archi_type(streaming_markov_spec()));
    const adl::ComposedModel built =
        streaming::compose(streaming::markovian(100.0, true));
    EXPECT_EQ(parsed.graph.num_states(), built.graph.num_states());
    EXPECT_TRUE(bisim::strongly_bisimilar(parsed.graph, built.graph).equivalent);
}

TEST(Specs, StreamingMarkovMeasuresMatchBuilder) {
    const adl::ComposedModel parsed =
        adl::compose(aemilia::parse_archi_type(streaming_markov_spec()));
    const ctmc::MarkovModel parsed_markov = ctmc::build_markov(parsed);
    const auto parsed_pi = ctmc::steady_state(parsed_markov.chain);

    const adl::ComposedModel built =
        streaming::compose(streaming::markovian(100.0, true));
    const ctmc::MarkovModel built_markov = ctmc::build_markov(built);
    const auto built_pi = ctmc::steady_state(built_markov.chain);

    for (const adl::Measure& m : streaming::measures()) {
        const double a = ctmc::evaluate_measure(parsed_markov, parsed, parsed_pi, m);
        const double b = ctmc::evaluate_measure(built_markov, built, built_pi, m);
        EXPECT_LT(relative_error(a, b), 1e-6) << m.name << ": " << a << " vs " << b;
    }
}

TEST(Specs, StreamingSpecPassesNoninterference) {
    // The *timed* spec also passes the functional check (rates are ignored
    // by the weak-bisimulation machinery); cf. Sect. 3.2.
    const adl::ComposedModel parsed =
        adl::compose(aemilia::parse_archi_type(streaming_markov_spec()));
    // Reduce to a tractable size by rebuilding with small buffers: reuse the
    // builder's functional config for that; here we simply check the parsed
    // 10/10 system's high labels exist and the checker runs on the builder's
    // reduced version.
    const auto verdict = noninterference::check_dpm_transparency(
        streaming::compose(streaming::functional(2)),
        streaming::high_action_labels(), "C");
    EXPECT_TRUE(verdict.noninterfering);
    EXPECT_NE(parsed.graph.actions()->find("DPM.send_shutdown#NIC.receive_shutdown"),
              kNoSymbol);
}

TEST(Specs, RpcGeneralIsBisimilarToBuilderAndCarriesGeneralRates) {
    const adl::ArchiType archi = aemilia::parse_archi_type(rpc_general_spec());
    const adl::ComposedModel parsed = adl::compose(archi);
    const adl::ComposedModel built = rpc::compose(rpc::general(5.0, true));
    EXPECT_TRUE(bisim::strongly_bisimilar(parsed.graph, built.graph).equivalent);
    bool has_general = false;
    for (lts::StateId st = 0; st < parsed.graph.num_states(); ++st) {
        for (const lts::Transition& t : parsed.graph.out(st)) {
            if (lts::is_general(t.rate)) has_general = true;
        }
    }
    EXPECT_TRUE(has_general);
}

TEST(Specs, DiskMarkovIsBisimilarToBuilder) {
    const adl::ComposedModel parsed =
        adl::compose(aemilia::parse_archi_type(disk_markov_spec()));
    const adl::ComposedModel built =
        adl::compose(models::disk::build(models::disk::markovian(500.0, true)));
    EXPECT_EQ(parsed.graph.num_states(), built.graph.num_states());
    EXPECT_TRUE(bisim::strongly_bisimilar(parsed.graph, built.graph).equivalent);
}

TEST(Specs, MeasureSpecParsesAllThreeMeasures) {
    const auto measures = aemilia::parse_measures(rpc_measures_spec());
    ASSERT_EQ(measures.size(), 3u);
    EXPECT_EQ(measures[0].name, "throughput");
    EXPECT_EQ(measures[1].name, "waiting");
    EXPECT_EQ(measures[2].name, "energy");
    EXPECT_EQ(measures[2].clauses.size(), 4u);
}

}  // namespace
}  // namespace dpma::models
