#include <gtest/gtest.h>

#include "bisim/hml.hpp"
#include "bisim/hml_check.hpp"
#include "lts/lts.hpp"

namespace dpma::bisim {
namespace {

using lts::Lts;
using lts::StateId;

TEST(HmlBuilders, TrueIsShared) {
    EXPECT_EQ(hml_true().get(), hml_true().get());
    EXPECT_EQ(hml_true()->kind, Formula::Kind::True);
}

TEST(HmlBuilders, DoubleNegationCancels) {
    const FormulaPtr phi = hml_diamond("a", false, hml_true());
    EXPECT_EQ(hml_not(hml_not(phi)).get(), phi.get());
}

TEST(HmlBuilders, EmptyConjunctionIsTrue) {
    EXPECT_EQ(hml_and({})->kind, Formula::Kind::True);
}

TEST(HmlBuilders, SingletonConjunctionCollapses) {
    const FormulaPtr phi = hml_diamond("a", false, hml_true());
    EXPECT_EQ(hml_and({phi}).get(), phi.get());
}

TEST(HmlBuilders, TrueConjunctsAreDropped) {
    const FormulaPtr phi = hml_diamond("a", false, hml_true());
    const FormulaPtr conj = hml_and({hml_true(), phi, hml_true()});
    EXPECT_EQ(conj.get(), phi.get());
}

TEST(HmlBuilders, DuplicateConjunctsAreDeduplicated) {
    const FormulaPtr phi1 = hml_diamond("a", true, hml_true());
    const FormulaPtr phi2 = hml_diamond("a", true, hml_true());
    const FormulaPtr psi = hml_diamond("b", true, hml_true());
    const FormulaPtr conj = hml_and({phi1, phi2, psi});
    ASSERT_EQ(conj->kind, Formula::Kind::And);
    EXPECT_EQ(conj->children.size(), 2u);
}

TEST(HmlPrinter, TwoTowersSyntaxForWeakDiamond) {
    const FormulaPtr phi =
        hml_diamond("C.send_rpc_packet#RCS.get_packet", true,
                    hml_not(hml_diamond("RSC.deliver_packet#C.receive_result_packet",
                                        true, hml_true())));
    const std::string text = to_two_towers(phi);
    EXPECT_NE(text.find("EXISTS_WEAK_TRANS("), std::string::npos);
    EXPECT_NE(text.find("LABEL(C.send_rpc_packet#RCS.get_packet);"), std::string::npos);
    EXPECT_NE(text.find("REACHED_STATE_SAT("), std::string::npos);
    EXPECT_NE(text.find("NOT("), std::string::npos);
    EXPECT_NE(text.find("TRUE"), std::string::npos);
}

TEST(HmlPrinter, StrongDiamondUsesExistsTrans) {
    const std::string text = to_two_towers(hml_diamond("a", false, hml_true()));
    EXPECT_NE(text.find("EXISTS_TRANS("), std::string::npos);
    EXPECT_EQ(text.find("EXISTS_WEAK_TRANS("), std::string::npos);
}

TEST(HmlPrinter, TauLabelPrintsAsTAU) {
    const std::string text = to_two_towers(hml_diamond("tau", true, hml_true()));
    EXPECT_NE(text.find("TAU;"), std::string::npos);
}

TEST(HmlPrinter, CompactFormIsSingleLine) {
    const FormulaPtr phi = hml_and({hml_diamond("a", true, hml_true()),
                                    hml_not(hml_diamond("b", false, hml_true()))});
    const std::string text = to_compact(phi);
    EXPECT_EQ(text.find('\n'), std::string::npos);
    EXPECT_EQ(text, "(<<a>>tt & ~(<b>tt))");
}

TEST(HmlSize, CountsNodes) {
    EXPECT_EQ(formula_size(hml_true()), 1u);
    EXPECT_EQ(formula_size(hml_not(hml_diamond("a", false, hml_true()))), 3u);
    EXPECT_EQ(formula_size(nullptr), 0u);
}

class HmlCheckFixture : public ::testing::Test {
protected:
    // s0 -a-> s1 -tau-> s2 -b-> s3,  s0 -tau-> s3
    void SetUp() override {
        s0 = m.add_state();
        s1 = m.add_state();
        s2 = m.add_state();
        s3 = m.add_state();
        m.add_transition(s0, m.action("a"), s1);
        m.add_transition(s1, m.actions()->tau(), s2);
        m.add_transition(s2, m.action("b"), s3);
        m.add_transition(s0, m.actions()->tau(), s3);
        m.set_initial(s0);
    }
    Lts m;
    StateId s0{}, s1{}, s2{}, s3{};
};

TEST_F(HmlCheckFixture, StrongDiamondSeesOneStep) {
    EXPECT_TRUE(satisfies(m, s0, hml_diamond("a", false, hml_true())));
    EXPECT_FALSE(satisfies(m, s0, hml_diamond("b", false, hml_true())));
}

TEST_F(HmlCheckFixture, StrongDiamondDoesNotSkipTaus) {
    // s1 -tau-> s2 -b-> : strongly, s1 cannot do b.
    EXPECT_FALSE(satisfies(m, s1, hml_diamond("b", false, hml_true())));
}

TEST_F(HmlCheckFixture, WeakDiamondAbsorbsTaus) {
    EXPECT_TRUE(satisfies(m, s1, hml_diamond("b", true, hml_true())));
    // And after a: weak <a><b>tt at s0.
    EXPECT_TRUE(satisfies(
        m, s0, hml_diamond("a", true, hml_diamond("b", true, hml_true()))));
}

TEST_F(HmlCheckFixture, WeakTauDiamondIsReflexive) {
    // <<tau>>phi holds if phi holds here or after taus.
    EXPECT_TRUE(satisfies(m, s0, hml_diamond("tau", true, hml_true())));
    EXPECT_TRUE(satisfies(m, s3, hml_diamond("tau", true, hml_true())));
}

TEST_F(HmlCheckFixture, NegationAndConjunction) {
    const FormulaPtr can_a = hml_diamond("a", true, hml_true());
    const FormulaPtr can_b = hml_diamond("b", true, hml_true());
    EXPECT_TRUE(satisfies(m, s0, hml_and({can_a, hml_not(can_b)})));
    EXPECT_FALSE(satisfies(m, s0, hml_and({can_a, can_b})));
}

TEST_F(HmlCheckFixture, UnknownLabelIsUnsatisfiable) {
    EXPECT_FALSE(satisfies(m, s0, hml_diamond("never_used", true, hml_true())));
    EXPECT_TRUE(satisfies(m, s0, hml_not(hml_diamond("never_used", true, hml_true()))));
}

}  // namespace
}  // namespace dpma::bisim
