#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "adl/compose.hpp"
#include "adl/measure.hpp"
#include "battery/battery.hpp"
#include "battery/coupling.hpp"
#include "battery/lifetime.hpp"
#include "core/error.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/solve.hpp"
#include "exp/report.hpp"
#include "models/builder.hpp"
#include "models/rpc.hpp"
#include "sim/gsmp.hpp"

namespace dpma::battery {
namespace {

BatteryParams kibam_params(double capacity, double c, double rate) {
    BatteryParams params;
    params.kind = BatteryParams::Kind::Kibam;
    params.capacity = capacity;
    params.kibam_c = c;
    params.kibam_rate = rate;
    return params;
}

/// Textbook KiBaM available charge (Manwell–McGowan), written the published
/// way — independent of the (y, gap) parameterisation the implementation
/// integrates — so agreement is a real cross-check, not a tautology:
///   y1(t) = y1_0 e^{-k't} + (y_0 k' c - I)(1 - e^{-k't})/k'
///           - I c (k' t - 1 + e^{-k't}) / k'
double textbook_available(const BatteryParams& params, double load, double t) {
    const double kp = params.kibam_rate;
    const double c = params.kibam_c;
    const double y1_0 = c * params.capacity;  // full battery
    const double y0 = params.capacity;
    const double e = std::exp(-kp * t);
    return y1_0 * e + (y0 * kp * c - load) * (1.0 - e) / kp -
           load * c * (kp * t - 1.0 + e) / kp;
}

/// Depletion time of a full battery under constant \p load by bisecting the
/// textbook formula to ~1e-13 relative precision.
double textbook_depletion(const BatteryParams& params, double load) {
    double lo = 0.0;
    double hi = params.capacity / load;  // y1 <= c*y pins the crossing below this
    EXPECT_LE(textbook_available(params, load, hi), 0.0);
    for (int i = 0; i < 200 && (hi - lo) > 1e-14 * hi; ++i) {
        const double mid = 0.5 * (lo + hi);
        (textbook_available(params, load, mid) > 0.0 ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
}

// ---------------------------------------------------------------------------
// Battery models
// ---------------------------------------------------------------------------

TEST(Ideal, LifetimeIsCapacityOverPower) {
    BatteryParams params;
    params.capacity = 120.0;
    const auto battery = make_battery(params);
    EXPECT_DOUBLE_EQ(battery->time_to_depletion(4.0), 30.0);
    EXPECT_EQ(battery->time_to_depletion(0.0), kNever);
    EXPECT_TRUE(std::isnan(battery->advance(4.0, 10.0)));
    EXPECT_NEAR(battery->state_of_charge(), 2.0 / 3.0, 1e-12);
    const double offset = battery->advance(4.0, 100.0);
    EXPECT_NEAR(offset, 20.0, 1e-12);
    EXPECT_TRUE(battery->depleted());
    EXPECT_NEAR(battery->delivered_charge(), 120.0, 1e-12);
}

TEST(Peukert, ExponentOneReducesToIdeal) {
    BatteryParams params;
    params.kind = BatteryParams::Kind::Peukert;
    params.capacity = 50.0;
    params.peukert_exponent = 1.0;
    params.peukert_reference_power = 2.0;
    EXPECT_NEAR(constant_power_lifetime(params, 5.0), 10.0, 1e-12);
}

TEST(Peukert, RateCapacityEffectCutsDeliveredCharge) {
    BatteryParams params;
    params.kind = BatteryParams::Kind::Peukert;
    params.capacity = 100.0;
    params.peukert_exponent = 1.3;
    params.peukert_reference_power = 1.0;
    // At the rated load the battery delivers its nominal capacity...
    const auto at_ref = make_battery(params);
    EXPECT_TRUE(std::isfinite(at_ref->advance(1.0, 1e9)));
    EXPECT_NEAR(at_ref->delivered_charge(), 100.0, 1e-9);
    // ...above it, strictly less (drain rate 4^1.3 > 4x at load 4).
    const auto above = make_battery(params);
    EXPECT_TRUE(std::isfinite(above->advance(4.0, 1e9)));
    EXPECT_LT(above->delivered_charge(), 100.0 - 1.0);
    // Below the rated load it delivers *more* than nominal (alpha > 1).
    const auto below = make_battery(params);
    EXPECT_TRUE(std::isfinite(below->advance(0.25, 1e9)));
    EXPECT_GT(below->delivered_charge(), 100.0 + 1.0);
}

TEST(Kibam, MatchesClosedFormConstantLoadDepletion) {
    // Acceptance criterion: <= 1e-9 relative error against the closed-form
    // constant-load depletion time, across well fractions, valve rates and
    // loads spanning the gentle-to-brutal range.
    for (const double c : {0.3, 0.5, 0.8}) {
        for (const double rate : {1e-3, 1e-2, 0.2}) {
            for (const double load : {0.4, 1.0, 3.0}) {
                const BatteryParams params = kibam_params(1000.0, c, rate);
                const double expected = textbook_depletion(params, load);
                const double actual = constant_power_lifetime(params, load);
                EXPECT_NEAR(actual, expected, 1e-9 * expected)
                    << "c=" << c << " k'=" << rate << " I=" << load;
            }
        }
    }
}

TEST(Kibam, AdvanceReachesTheSameDepletionInstantAsOneShot) {
    // The closed-form step means splitting never changes the state: many
    // small advances must deplete at the same instant as a single query.
    const BatteryParams params = kibam_params(500.0, 0.4, 5e-3);
    const double load = 1.5;
    const double expected = constant_power_lifetime(params, load);
    const auto battery = make_battery(params);
    double elapsed = 0.0;
    const double dt = 0.37;  // deliberately incommensurate with the lifetime
    for (int i = 0; i < 100000 && !battery->depleted(); ++i) {
        const double offset = battery->advance(load, dt);
        elapsed += std::isnan(offset) ? dt : offset;
    }
    ASSERT_TRUE(battery->depleted());
    EXPECT_NEAR(elapsed, expected, 1e-9 * expected);
    EXPECT_NEAR(battery->delivered_charge(), load * expected, 1e-9 * load * expected);
}

TEST(Kibam, PulsedLoadDeliversStrictlyMoreThanTheAverageContinuousLoad) {
    // Recovery effect: a pulsed load (P on, rest, repeat) delivers strictly
    // more charge before depletion than a continuous load at the same
    // average power — the rests let bound charge flow back into the small
    // available well.  This is what makes DPM sleep periods worth more than
    // their average-power savings.  (The regime matters: with a small
    // available-well fraction and deep rests the recovery dominates; with
    // shallow rests the pulsed load instead dies mid-pulse with the well
    // gap on its high swing and delivers slightly *less* — which is why
    // this is a modelling subsystem and not a mean-power correction.)
    const BatteryParams params = kibam_params(100.0, 0.2, 0.01);

    const auto continuous = make_battery(params);
    while (!continuous->depleted()) {
        (void)continuous->advance(1.0, 4.0);
    }

    const auto pulsed = make_battery(params);
    while (!pulsed->depleted()) {
        (void)pulsed->advance(5.0, 4.0);  // same 1.0 average: 5x load, 1/5 duty
        if (pulsed->depleted()) break;
        (void)pulsed->advance(0.0, 16.0);  // deep rest: bound -> available
    }

    EXPECT_GT(pulsed->delivered_charge(), continuous->delivered_charge() * 1.01);
    // The valve flows under any positive gap, so even the continuous load
    // recovers *some* bound charge — but the rests recover strictly more.
    EXPECT_GT(pulsed->recovered_charge(), continuous->recovered_charge());
}

TEST(Kibam, RestRecoversAvailableChargeWithoutCreatingAny) {
    const BatteryParams params = kibam_params(100.0, 0.5, 0.02);
    const auto battery = make_battery(params);
    (void)battery->advance(2.0, 10.0);
    ASSERT_FALSE(battery->depleted());
    const double soc_before = battery->state_of_charge();
    const double tau_tired = battery->time_to_depletion(2.0);
    (void)battery->advance(0.0, 100.0);  // long rest
    // Rest moves charge between wells: total state of charge is unchanged,
    // but the battery now survives the same load strictly longer.
    EXPECT_NEAR(battery->state_of_charge(), soc_before, 1e-12);
    EXPECT_GT(battery->time_to_depletion(2.0), tau_tired * 1.0001);
    EXPECT_GT(battery->recovered_charge(), 0.0);
}

TEST(Kibam, DepletionStrandsBoundCharge) {
    const BatteryParams params = kibam_params(100.0, 0.5, 1e-3);
    const auto battery = make_battery(params);
    const double offset = battery->advance(4.0, 50.0);
    ASSERT_TRUE(std::isfinite(offset));
    ASSERT_TRUE(battery->depleted());
    // The available well is empty but the bound well is not: the delivered
    // charge falls short of nominal and the residual SoC reports the rest.
    EXPECT_LT(battery->delivered_charge(), 100.0 * 0.75);
    EXPECT_GT(battery->state_of_charge(), 0.2);
    EXPECT_NEAR(battery->delivered_charge() + battery->state_of_charge() * 100.0,
                100.0, 1e-6);
}

TEST(Battery, CloneIsIndependent) {
    const BatteryParams params = kibam_params(50.0, 0.5, 0.01);
    const auto original = make_battery(params);
    (void)original->advance(1.0, 10.0);
    const auto copy = original->clone();
    EXPECT_DOUBLE_EQ(copy->state_of_charge(), original->state_of_charge());
    EXPECT_DOUBLE_EQ(copy->delivered_charge(), original->delivered_charge());
    (void)copy->advance(1.0, 10.0);
    EXPECT_LT(copy->state_of_charge(), original->state_of_charge());
}

TEST(BatteryParams, ValidationRejectsOutOfRangeValues) {
    BatteryParams params;
    params.capacity = 0.0;
    EXPECT_THROW(params.validate(), Error);
    params.capacity = 10.0;
    params.kind = BatteryParams::Kind::Peukert;
    params.peukert_exponent = 0.5;
    EXPECT_THROW(params.validate(), Error);
    params.peukert_exponent = 1.2;
    params.peukert_reference_power = -1.0;
    EXPECT_THROW(params.validate(), Error);
    params = kibam_params(10.0, 1.0, 0.01);
    EXPECT_THROW(params.validate(), Error);
    params = kibam_params(10.0, 0.5, 0.0);
    EXPECT_THROW(params.validate(), Error);
    EXPECT_THROW((void)BatteryParams::kind_from("fusion"), Error);
    EXPECT_NO_THROW(kibam_params(10.0, 0.5, 0.01).validate());
}

// ---------------------------------------------------------------------------
// Simulation coupling
// ---------------------------------------------------------------------------

/// Two-state exponential on/off cell with a power reward on the busy state:
/// the smallest system whose trajectory exercises the observer.
adl::ArchiType cell_system() {
    adl::ElemType cell;
    cell.name = "Cell_Type";
    cell.behaviors = {
        adl::BehaviorDef{"On", {}, {models::alt({models::act("work", lts::RateExp{1.0})}, "Off")}},
        adl::BehaviorDef{"Off", {}, {models::alt({models::act("rest", lts::RateExp{2.0})}, "On")}},
    };
    adl::ArchiType archi;
    archi.name = "Cell";
    archi.elem_types = {cell};
    archi.instances = {adl::Instance{"M", "Cell_Type", {}}};
    return archi;
}

std::vector<adl::Measure> cell_measures() {
    return {
        adl::Measure{"power", {adl::state_reward_in("M", "On", 1.0)}},
        adl::Measure{"work_done", {adl::trans_reward("M", "work", 1.0)}},
    };
}

TEST(Replay, IdealBatteryReproducesEnergyFirstPassage) {
    // With an ideal battery the depletion instant is exactly the first
    // passage of the accumulated power reward through the capacity, and the
    // replay derives its per-replication seeds the same way as
    // simulate_depletion — so the two estimates must agree.
    const adl::ComposedModel model = adl::compose(cell_system());
    const sim::Simulator simulator(model, cell_measures());

    BatteryParams params;
    params.capacity = 40.0;

    ReplayOptions replay;
    replay.horizon = 500.0;
    replay.seed = 11;
    replay.replications = 6;
    const LifetimeEstimate estimate = simulate_lifetime(simulator, 0, params, replay);
    ASSERT_EQ(estimate.censored, 0);
    ASSERT_EQ(estimate.samples.size(), 6u);

    sim::SimOptions options;
    options.horizon = 500.0;
    options.seed = 11;
    const sim::Estimate reference =
        sim::simulate_depletion(simulator, 0, params.capacity, options, 6, 0.95);
    ASSERT_EQ(reference.samples.size(), 6u);
    for (std::size_t r = 0; r < 6; ++r) {
        EXPECT_NEAR(estimate.samples[r], reference.samples[r],
                    1e-9 * reference.samples[r])
            << "replication " << r;
    }
    EXPECT_NEAR(estimate.mean, reference.mean, 1e-9 * reference.mean);
    // Every depleted replication delivered exactly the capacity.
    EXPECT_NEAR(estimate.mean_delivered, params.capacity, 1e-9 * params.capacity);
}

TEST(Replay, CensoredReplicationsAreReportedNotFolded) {
    const adl::ComposedModel model = adl::compose(cell_system());
    const sim::Simulator simulator(model, cell_measures());

    BatteryParams params;
    params.capacity = 1000.0;  // mean power 2/3 => lifetime ~ 1500, far past horizon

    ReplayOptions replay;
    replay.horizon = 10.0;
    replay.seed = 3;
    replay.replications = 4;
    const LifetimeEstimate estimate = simulate_lifetime(simulator, 0, params, replay);
    EXPECT_EQ(estimate.censored, 4);
    EXPECT_TRUE(estimate.samples.empty());
    EXPECT_EQ(estimate.mean, 0.0);  // no depleted samples — nothing is folded in
    for (const ReplicationOutcome& outcome : estimate.outcomes) {
        EXPECT_FALSE(outcome.depleted);
        EXPECT_DOUBLE_EQ(outcome.time, 10.0);
        EXPECT_GT(outcome.state_of_charge, 0.9);
    }
    const std::string json = estimate.json();
    EXPECT_NE(json.find("\"censored\":4"), std::string::npos);
}

TEST(Replay, MeasureTotalsStopAtTheDepletionInstant) {
    const adl::ComposedModel model = adl::compose(cell_system());
    const sim::Simulator simulator(model, cell_measures());

    BatteryParams params;
    params.capacity = 30.0;

    ReplayOptions replay;
    replay.horizon = 1000.0;
    replay.seed = 5;
    replay.replications = 4;
    const LifetimeEstimate estimate = simulate_lifetime(simulator, 0, params, replay);
    ASSERT_EQ(estimate.censored, 0);
    for (const ReplicationOutcome& outcome : estimate.outcomes) {
        // The power measure total at the stop is exactly the capacity (the
        // run ends at the crossing, not at the next event).
        EXPECT_NEAR(outcome.totals[0], params.capacity, 1e-9 * params.capacity);
        EXPECT_LT(outcome.time, 1000.0);
        EXPECT_GT(outcome.totals[1], 0.0);  // served some work before dying
    }
}

// ---------------------------------------------------------------------------
// Markovian coupling
// ---------------------------------------------------------------------------

TEST(CtmcBounds, IdealFluidIsCapacityOverSteadyPower) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(10.0, true));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto measures = models::rpc::measures();

    BatteryParams params;
    params.capacity = 5000.0;
    const CtmcLifetime bounds = ctmc_lifetime(
        markov, model, measures[models::rpc::kEnergyRate], params);
    EXPECT_GT(bounds.steady_power, 0.0);
    EXPECT_NEAR(bounds.fluid, params.capacity / bounds.steady_power,
                1e-9 * bounds.fluid);

    // The power partition covers all tangible states with total mass one.
    double mass = 0.0;
    std::size_t states = 0;
    for (const PowerBand& band : bounds.bands) {
        mass += band.probability;
        states += band.states;
    }
    EXPECT_NEAR(mass, 1.0, 1e-9);
    EXPECT_EQ(states, markov.chain.num_states());
    EXPECT_GT(bounds.bands.size(), 1u);  // sleeping vs powered states differ
}

TEST(CtmcBounds, RefinedCapturesTheColdStartForTheDpmServer) {
    // From a cold start the rpc server has never slept, so the transient
    // power exceeds the steady-state power; under an ideal battery the
    // refined lifetime must come out at or below the fluid bound, and both
    // must be finite and positive.
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(10.0, true));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto measures = models::rpc::measures();

    BatteryParams params;
    params.capacity = 300.0;  // small: the cold-start window matters
    const CtmcLifetime bounds = ctmc_lifetime(
        markov, model, measures[models::rpc::kEnergyRate], params);
    EXPECT_GT(bounds.refined, 0.0);
    EXPECT_TRUE(std::isfinite(bounds.refined));
    EXPECT_LE(bounds.refined, bounds.fluid * (1.0 + 1e-9));
}

TEST(CtmcBounds, ProfileLifetimeHandlesZeroPowerTail) {
    PowerProfile profile;
    profile.step = 1.0;
    profile.power = {2.0, 2.0};
    profile.tail_power = 0.0;

    BatteryParams params;
    params.capacity = 100.0;
    EXPECT_EQ(profile_lifetime(profile, params), kNever);

    params.capacity = 3.0;  // dies inside the second step
    EXPECT_NEAR(profile_lifetime(profile, params), 1.5, 1e-12);
}

// ---------------------------------------------------------------------------
// Lifetime study
// ---------------------------------------------------------------------------

TEST(Study, ValidatesOptions) {
    StudyOptions options;
    options.system = "toaster";
    options.capacities = {100.0};
    EXPECT_THROW(options.validate(), Error);
    options.system = "rpc";
    options.capacities = {};
    EXPECT_THROW(options.validate(), Error);
    options.capacities = {-5.0};
    EXPECT_THROW(options.validate(), Error);
    options.capacities = {100.0};
    options.replications = 0;
    EXPECT_THROW(options.validate(), Error);
    options.replications = 2;
    options.horizon_factor = 0.0;
    EXPECT_THROW(options.validate(), Error);
    options.horizon_factor = 8.0;
    EXPECT_NO_THROW(options.validate());
}

TEST(Study, ParallelSweepIsBitIdenticalToSerial) {
    StudyOptions options;
    options.system = "rpc";
    options.battery = kibam_params(1.0, 0.5, 1e-3);  // capacity comes from the axis
    options.capacities = {300.0, 600.0};
    options.replications = 2;
    options.base_seed = 17;

    options.jobs = 1;
    const exp::ResultSet serial = run_lifetime_study(options);
    options.jobs = 4;
    const exp::ResultSet parallel = run_lifetime_study(options);

    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), 4u);  // 2 capacities x {NO-DPM, DPM}
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial.at(i).result.values, parallel.at(i).result.values)
            << "point " << i;
        EXPECT_EQ(serial.at(i).result.half_widths, parallel.at(i).result.half_widths)
            << "point " << i;
        EXPECT_EQ(serial.at(i).result.diagnostics, parallel.at(i).result.diagnostics)
            << "point " << i;
    }
}

TEST(Study, KibamAmplifiesTheDpmLifetimeGapBeyondTheFluidPrediction) {
    // Acceptance criterion: under KiBaM the simulated DPM-vs-NO-DPM lifetime
    // ratio exceeds the ideal-battery (fluid) prediction, i.e. the
    // steady-power ratio — the DPM's sleep periods recover bound charge the
    // NO-DPM run strands.
    StudyOptions options;
    options.system = "rpc";
    options.battery = kibam_params(1.0, 0.5, 1e-3);
    options.capacities = {5000.0};
    options.replications = 3;
    options.base_seed = 7;
    const exp::ResultSet results = run_lifetime_study(options);
    ASSERT_EQ(results.size(), 2u);

    const double lifetime_nodpm = results.value(0, "lifetime");
    const double lifetime_dpm = results.value(1, "lifetime");
    ASSERT_EQ(results.value(0, "censored"), 0.0);
    ASSERT_EQ(results.value(1, "censored"), 0.0);
    ASSERT_GT(lifetime_nodpm, 0.0);

    // Ideal-battery prediction of the gap: lifetimes ~ capacity / power, so
    // the ratio is the steady-power ratio — recover it from the kibam fluid
    // columns' underlying powers via capacity / fluid of an *ideal* battery.
    const adl::ComposedModel nodpm =
        models::rpc::compose(models::rpc::markovian(10.0, false));
    const adl::ComposedModel dpm =
        models::rpc::compose(models::rpc::markovian(10.0, true));
    const auto measures = models::rpc::measures();
    const auto steady_power = [&](const adl::ComposedModel& model) {
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto power = tangible_power(markov, model,
                                          measures[models::rpc::kEnergyRate]);
        const auto pi = ctmc::steady_state(markov.chain);
        double mean = 0.0;
        for (std::size_t s = 0; s < pi.size(); ++s) mean += pi[s] * power[s];
        return mean;
    };
    const double fluid_ratio = steady_power(nodpm) / steady_power(dpm);
    const double simulated_ratio = lifetime_dpm / lifetime_nodpm;
    EXPECT_GT(fluid_ratio, 1.0);  // DPM saves average power to begin with
    EXPECT_GT(simulated_ratio, fluid_ratio)
        << "kibam did not amplify the DPM gap beyond the fluid prediction";

    // And the DPM run recovered strictly more bound charge than NO-DPM.
    EXPECT_GT(results.value(1, "recovered"), results.value(0, "recovered"));
}

}  // namespace
}  // namespace dpma::battery
