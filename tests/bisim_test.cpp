#include <gtest/gtest.h>

#include "bisim/equivalence.hpp"
#include "bisim/hml_check.hpp"
#include "bisim/partition.hpp"
#include "lts/ops.hpp"

namespace dpma::bisim {
namespace {

using lts::Lts;
using lts::StateId;

/// The classic CCS example: a.(b + c) vs a.b + a.c — trace equivalent but
/// not bisimilar.
Lts branching_late() {  // a.(b + c)
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    const StateId s2 = m.add_state();
    const StateId s3 = m.add_state();
    m.add_transition(s0, m.action("a"), s1);
    m.add_transition(s1, m.action("b"), s2);
    m.add_transition(s1, m.action("c"), s3);
    m.set_initial(s0);
    return m;
}

Lts branching_early() {  // a.b + a.c
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    const StateId s2 = m.add_state();
    const StateId s3 = m.add_state();
    const StateId s4 = m.add_state();
    m.add_transition(s0, m.action("a"), s1);
    m.add_transition(s0, m.action("a"), s2);
    m.add_transition(s1, m.action("b"), s3);
    m.add_transition(s2, m.action("c"), s4);
    m.set_initial(s0);
    return m;
}

/// A two-state toggle: a.b.a.b...
Lts toggle() {
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    m.add_transition(s0, m.action("a"), s1);
    m.add_transition(s1, m.action("b"), s0);
    m.set_initial(s0);
    return m;
}

/// The same toggle "unrolled" to four states (bisimilar to toggle()).
Lts toggle_unrolled() {
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    const StateId s2 = m.add_state();
    const StateId s3 = m.add_state();
    m.add_transition(s0, m.action("a"), s1);
    m.add_transition(s1, m.action("b"), s2);
    m.add_transition(s2, m.action("a"), s3);
    m.add_transition(s3, m.action("b"), s0);
    m.set_initial(s0);
    return m;
}

TEST(StrongBisim, UnrolledCycleIsBisimilar) {
    const auto result = strongly_bisimilar(toggle(), toggle_unrolled());
    EXPECT_TRUE(result.equivalent);
    EXPECT_EQ(result.distinguishing, nullptr);
}

TEST(StrongBisim, BranchingTimeDistinguishesClassicExample) {
    const auto result = strongly_bisimilar(branching_late(), branching_early());
    EXPECT_FALSE(result.equivalent);
    ASSERT_NE(result.distinguishing, nullptr);
}

TEST(StrongBisim, DistinguishingFormulaIsVerifiedByModelChecker) {
    const Lts lhs = branching_late();
    const Lts rhs = branching_early();
    const auto result = strongly_bisimilar(lhs, rhs);
    ASSERT_FALSE(result.equivalent);
    // The formula must hold in lhs's initial state and fail in rhs's.
    // (Formula was generated on the disjoint union; check on the union too.)
    const lts::UnionResult u = lts::disjoint_union(lhs, rhs);
    EXPECT_TRUE(satisfies(u.combined, u.initial_lhs, result.distinguishing));
    EXPECT_FALSE(satisfies(u.combined, u.initial_rhs, result.distinguishing));
}

TEST(StrongBisim, DifferentAlphabetsAreDistinguished) {
    Lts a;
    const StateId a0 = a.add_state();
    a.add_transition(a0, a.action("x"), a0);
    a.set_initial(a0);
    Lts b;
    const StateId b0 = b.add_state();
    b.add_transition(b0, b.action("y"), b0);
    b.set_initial(b0);
    const auto result = strongly_bisimilar(a, b);
    EXPECT_FALSE(result.equivalent);
}

TEST(WeakBisim, TauPrefixIsInvisible) {
    // tau.a ~weak~ a
    Lts lhs;
    const StateId l0 = lhs.add_state();
    const StateId l1 = lhs.add_state();
    const StateId l2 = lhs.add_state();
    lhs.add_transition(l0, lhs.actions()->tau(), l1);
    lhs.add_transition(l1, lhs.action("a"), l2);
    lhs.set_initial(l0);

    Lts rhs;
    const StateId r0 = rhs.add_state();
    const StateId r1 = rhs.add_state();
    rhs.add_transition(r0, rhs.action("a"), r1);
    rhs.set_initial(r0);

    EXPECT_TRUE(weakly_bisimilar(lhs, rhs).equivalent);
    EXPECT_FALSE(strongly_bisimilar(lhs, rhs).equivalent);
}

TEST(WeakBisim, TauBranchingToDistinctCapabilitiesIsObservable) {
    // a + tau.b is NOT weakly bisimilar to a + b: the left can silently
    // commit to b, losing the a-capability.
    Lts lhs;
    {
        const StateId s0 = lhs.add_state();
        const StateId s1 = lhs.add_state();
        const StateId s2 = lhs.add_state();
        const StateId s3 = lhs.add_state();
        lhs.add_transition(s0, lhs.action("a"), s1);
        lhs.add_transition(s0, lhs.actions()->tau(), s2);
        lhs.add_transition(s2, lhs.action("b"), s3);
        lhs.set_initial(s0);
    }
    Lts rhs;
    {
        const StateId s0 = rhs.add_state();
        const StateId s1 = rhs.add_state();
        const StateId s2 = rhs.add_state();
        rhs.add_transition(s0, rhs.action("a"), s1);
        rhs.add_transition(s0, rhs.action("b"), s2);
        rhs.set_initial(s0);
    }
    const auto result = weakly_bisimilar(lhs, rhs);
    EXPECT_FALSE(result.equivalent);
    ASSERT_NE(result.distinguishing, nullptr);
    const lts::UnionResult u = lts::disjoint_union(lhs, rhs);
    EXPECT_TRUE(satisfies(u.combined, u.initial_lhs, result.distinguishing));
    EXPECT_FALSE(satisfies(u.combined, u.initial_rhs, result.distinguishing));
}

TEST(WeakBisim, TauLoopIsWeaklyEquivalentToNothing) {
    // A pure tau self-loop vs a deadlocked state (weak bisim ignores
    // divergence).
    Lts lhs;
    const StateId l0 = lhs.add_state();
    lhs.add_transition(l0, lhs.actions()->tau(), l0);
    lhs.set_initial(l0);
    Lts rhs;
    rhs.set_initial(rhs.add_state());
    EXPECT_TRUE(weakly_bisimilar(lhs, rhs).equivalent);
}

TEST(Refinement, StablePartitionIsCoarsestBisimulation) {
    const Lts m = toggle_unrolled();
    const RefinementResult r = refine_strong(m);
    // States 0/2 and 1/3 must coincide.
    EXPECT_EQ(r.final_blocks()[0], r.final_blocks()[2]);
    EXPECT_EQ(r.final_blocks()[1], r.final_blocks()[3]);
    EXPECT_NE(r.final_blocks()[0], r.final_blocks()[1]);
}

TEST(Refinement, SeparationRoundIsMonotone) {
    const Lts lhs = branching_late();
    const Lts rhs = branching_early();
    const lts::UnionResult u = lts::disjoint_union(lhs, rhs);
    const RefinementResult r = refine_strong(u.combined);
    const std::size_t round = r.separation_round(u.initial_lhs, u.initial_rhs);
    EXPECT_GE(round, 1u);
    // Once separated, states stay separated in all later rounds.
    for (std::size_t k = round; k < r.rounds.size(); ++k) {
        EXPECT_NE(r.rounds[k][u.initial_lhs], r.rounds[k][u.initial_rhs]);
    }
}

TEST(Quotient, IsBisimilarToTheOriginal) {
    const Lts m = toggle_unrolled();
    const RefinementResult r = refine_strong(m);
    const Lts q = quotient(m, r);
    EXPECT_EQ(q.num_states(), 2u);
    EXPECT_TRUE(strongly_bisimilar(m, q).equivalent);
}

TEST(Quotient, PreservesDeterministicStructure) {
    const Lts m = toggle();
    const RefinementResult r = refine_strong(m);
    const Lts q = quotient(m, r);
    EXPECT_EQ(q.num_states(), 2u);
    EXPECT_EQ(q.num_transitions(), 2u);
}

TEST(Quotient, CollapsesBisimilarBranches) {
    // a.b + a.b has two bisimilar a-successors; quotient collapses them.
    Lts m;
    const StateId s0 = m.add_state();
    const StateId s1 = m.add_state();
    const StateId s2 = m.add_state();
    const StateId s3 = m.add_state();
    const StateId s4 = m.add_state();
    m.add_transition(s0, m.action("a"), s1);
    m.add_transition(s0, m.action("a"), s2);
    m.add_transition(s1, m.action("b"), s3);
    m.add_transition(s2, m.action("b"), s4);
    m.set_initial(s0);
    const Lts q = quotient(m, refine_strong(m));
    EXPECT_EQ(q.num_states(), 3u);
    EXPECT_TRUE(strongly_bisimilar(m, q).equivalent);
}

/// Property sweep: random-ish LTS must always be bisimilar to its quotient,
/// and the quotient must be minimal (refining it again splits nothing).
class QuotientProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuotientProperty, QuotientIsBisimilarAndMinimal) {
    const int seed = GetParam();
    // Deterministic pseudo-random LTS from the seed.
    Lts m;
    const int n = 5 + seed % 11;
    std::vector<StateId> states;
    for (int i = 0; i < n; ++i) states.push_back(m.add_state());
    const char* names[] = {"a", "b", "c", "tau"};
    unsigned x = static_cast<unsigned>(seed) * 2654435761u + 1u;
    const auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        return x;
    };
    for (int i = 0; i < 3 * n; ++i) {
        const StateId from = states[next() % n];
        const StateId to = states[next() % n];
        const char* name = names[next() % 4];
        m.add_transition(from, m.action(name), to);
    }
    m.set_initial(states[0]);

    const RefinementResult r = refine_strong(m);
    const Lts q = quotient(m, r);
    EXPECT_TRUE(strongly_bisimilar(m, q).equivalent) << "seed " << seed;

    const RefinementResult r2 = refine_strong(q);
    std::size_t blocks = 0;
    for (BlockId b : r2.final_blocks()) blocks = std::max<std::size_t>(blocks, b + 1);
    EXPECT_EQ(blocks, q.num_states()) << "quotient not minimal, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuotientProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace dpma::bisim
