#include <gtest/gtest.h>

#include "core/error.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/lump.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/rpc.hpp"
#include "models/streaming.hpp"

namespace dpma::ctmc {
namespace {

/// Two mirrored branches: 0 -> {1, 2} -> 3 -> 0 with identical rates.
/// States 1 and 2 are lumpable.
Ctmc mirrored() {
    Ctmc chain(4);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(0, 2, 1.0);
    chain.add_rate(1, 3, 2.0);
    chain.add_rate(2, 3, 2.0);
    chain.add_rate(3, 0, 0.5);
    return chain;
}

TEST(Lump, MergesSymmetricStates) {
    const LumpResult result = lump(mirrored(), {});
    EXPECT_EQ(result.lumped.num_states(), 3u);
    EXPECT_EQ(result.block_of[1], result.block_of[2]);
    EXPECT_NE(result.block_of[0], result.block_of[1]);
}

TEST(Lump, LumpedChainAggregatesRates) {
    const LumpResult result = lump(mirrored(), {});
    // Block of state 0 must have total rate 2.0 into the merged block.
    const TangibleId b0 = result.block_of[0];
    const TangibleId b12 = result.block_of[1];
    double rate = 0.0;
    for (const RateEntry& e : result.lumped.row(b0)) {
        if (e.target == b12) rate += e.rate;
    }
    EXPECT_DOUBLE_EQ(rate, 2.0);
}

TEST(Lump, SteadyStateIsPreservedBlockwise) {
    const Ctmc chain = mirrored();
    const auto pi = steady_state(chain);
    const LumpResult result = lump(chain, {});
    const auto pi_lumped = steady_state(result.lumped);
    for (std::size_t b = 0; b < result.blocks.size(); ++b) {
        double mass = 0.0;
        for (TangibleId s : result.blocks[b]) mass += pi[s];
        EXPECT_NEAR(pi_lumped[b], mass, 1e-12) << "block " << b;
    }
}

TEST(Lump, ProtectedMaskPreventsMerging) {
    std::vector<char> mask{0, 1, 0, 0};  // single out state 1
    const LumpResult result = lump(mirrored(), {mask});
    EXPECT_NE(result.block_of[1], result.block_of[2]);
    EXPECT_EQ(result.lumped.num_states(), 4u);
}

TEST(Lump, ProjectMaskFoldsPureBlocks) {
    const LumpResult result = lump(mirrored(), {});
    const std::vector<char> mask{1, 0, 0, 0};  // constant on every block
    const auto projected = project_mask(result, mask);
    ASSERT_EQ(projected.size(), result.blocks.size());
    EXPECT_EQ(projected[result.block_of[0]], 1);
    EXPECT_EQ(projected[result.block_of[1]], 0);
}

TEST(Lump, ProjectMaskRejectsImpureBlocks) {
    const LumpResult result = lump(mirrored(), {});
    const std::vector<char> impure{0, 1, 0, 0};  // splits the merged block
    EXPECT_THROW((void)project_mask(result, impure), Error);
}

TEST(Lump, MasklessLumpOfHomogeneousRingCollapsesCompletely) {
    // A symmetric ring where every state looks identical.
    Ctmc ring(6);
    for (TangibleId i = 0; i < 6; ++i) {
        ring.add_rate(i, (i + 1) % 6, 1.0);
        ring.add_rate(i, (i + 5) % 6, 1.0);
    }
    const LumpResult result = lump(ring, {});
    EXPECT_EQ(result.lumped.num_states(), 1u);
}

TEST(Lump, RpcModelLumpsWithoutChangingMeasures) {
    // Lump the rpc Markov chain protecting the measure masks; the state
    // probabilities aggregated per block must match.
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(5.0, true));
    const MarkovModel markov = build_markov(model);

    // Protected masks: the energy/waiting predicates projected to tangibles.
    const auto to_tangible = [&](const std::vector<char>& full) {
        std::vector<char> out(markov.chain.num_states());
        for (TangibleId t = 0; t < markov.chain.num_states(); ++t) {
            out[t] = full[markov.orig_of[t]];
        }
        return out;
    };
    std::vector<std::vector<char>> masks;
    for (const char* prefix :
         {"Idle_Server", "Busy_Server", "Responding_Server", "Awaking_Server"}) {
        masks.push_back(to_tangible(
            adl::state_mask(model, adl::InStatePredicate{"S", prefix})));
    }
    masks.push_back(to_tangible(
        adl::state_mask(model, adl::InStatePredicate{"C", "Waiting_Client"})));

    const LumpResult lumping = lump(markov.chain, masks);
    EXPECT_LE(lumping.lumped.num_states(), markov.chain.num_states());

    const auto pi = steady_state(markov.chain);
    const auto pi_lumped = steady_state(lumping.lumped);
    // Blockwise aggregation must agree.
    for (std::size_t b = 0; b < lumping.blocks.size(); ++b) {
        double mass = 0.0;
        for (TangibleId s : lumping.blocks[b]) mass += pi[s];
        EXPECT_NEAR(pi_lumped[b], mass, 1e-9);
    }
    // And the protected measures evaluate identically on the lumped chain.
    for (const auto& mask : masks) {
        double direct = 0.0;
        for (TangibleId t = 0; t < markov.chain.num_states(); ++t) {
            if (mask[t]) direct += pi[t];
        }
        const auto projected = project_mask(lumping, mask);
        double lumped_value = 0.0;
        for (std::size_t b = 0; b < projected.size(); ++b) {
            if (projected[b]) lumped_value += pi_lumped[b];
        }
        EXPECT_NEAR(direct, lumped_value, 1e-9);
    }
}

TEST(Lump, StreamingModelLumpingPreservesMeasures) {
    const adl::ComposedModel model =
        models::streaming::compose(models::streaming::markovian(100.0, true));
    const MarkovModel markov = build_markov(model);
    // Protect only the NIC power states: plenty of client/channel detail can
    // be folded away.
    const auto to_tangible = [&](const std::vector<char>& full) {
        std::vector<char> out(markov.chain.num_states());
        for (TangibleId t = 0; t < markov.chain.num_states(); ++t) {
            out[t] = full[markov.orig_of[t]];
        }
        return out;
    };
    std::vector<std::vector<char>> masks;
    for (const char* prefix : {"NIC_Awake", "NIC_Doze", "NIC_WakingUp", "NIC_Checking"}) {
        masks.push_back(to_tangible(
            adl::state_mask(model, adl::InStatePredicate{"NIC", prefix})));
    }
    // Ordinary lumpability finds no nontrivial symmetry in this chain
    // (every component's state is observable through some rate); the value
    // of the test is the blockwise consistency below.
    const LumpResult lumping = lump(markov.chain, masks);
    EXPECT_LE(lumping.lumped.num_states(), markov.chain.num_states());

    const auto pi = steady_state(markov.chain);
    const auto pi_lumped = steady_state(lumping.lumped);
    const auto projected = project_mask(lumping, masks[1]);  // NIC_Doze
    double direct = 0.0;
    for (TangibleId t = 0; t < markov.chain.num_states(); ++t) {
        if (masks[1][t]) direct += pi[t];
    }
    double lumped_value = 0.0;
    for (std::size_t b = 0; b < projected.size(); ++b) {
        if (projected[b]) lumped_value += pi_lumped[b];
    }
    EXPECT_NEAR(direct, lumped_value, 1e-8);
}

}  // namespace
}  // namespace dpma::ctmc
