#include <gtest/gtest.h>

#include "adl/compose.hpp"
#include "adl/expr.hpp"
#include "adl/measure.hpp"
#include "adl/model.hpp"
#include "core/error.hpp"
#include "lts/ops.hpp"
#include "models/builder.hpp"

namespace dpma::adl {
namespace {

using models::act;
using models::alt;
using models::cmp_eq;
using models::cmp_gt;
using models::cmp_lt;
using models::lit;
using models::minus;
using models::plus;
using models::pvar;

TEST(Expr, EvaluatesArithmetic) {
    const long params[] = {7, 3};
    const auto e = Expr::binary(Expr::Kind::Add, Expr::param(0, "n"),
                                Expr::binary(Expr::Kind::Mul, Expr::param(1, "m"),
                                             Expr::constant(2)));
    EXPECT_EQ(e->eval(params), 13);
}

TEST(Expr, DivisionAndModulo) {
    const long params[] = {17};
    const auto d = Expr::binary(Expr::Kind::Div, Expr::param(0, "n"), Expr::constant(5));
    const auto m = Expr::binary(Expr::Kind::Mod, Expr::param(0, "n"), Expr::constant(5));
    EXPECT_EQ(d->eval(params), 3);
    EXPECT_EQ(m->eval(params), 2);
}

TEST(Expr, DivisionByZeroThrows) {
    const auto e = Expr::binary(Expr::Kind::Div, Expr::constant(1), Expr::constant(0));
    EXPECT_THROW((void)e->eval({}), Error);
}

TEST(Expr, ParamIndexOutOfRangeThrows) {
    const auto e = Expr::param(3, "ghost");
    const long params[] = {1};
    EXPECT_THROW((void)e->eval(params), Error);
}

TEST(Expr, ToStringIsReadable) {
    const auto e = Expr::binary(Expr::Kind::Sub, Expr::param(0, "n"), Expr::constant(1));
    EXPECT_EQ(e->to_string(), "(n - 1)");
}

TEST(BoolExpr, ComparisonsAndConnectives) {
    const long params[] = {5};
    const auto lt5 = cmp_lt(pvar(), lit(5));
    const auto eq5 = cmp_eq(pvar(), lit(5));
    EXPECT_FALSE(lt5->eval(params));
    EXPECT_TRUE(eq5->eval(params));
    EXPECT_TRUE(BoolExpr::disj(lt5, eq5)->eval(params));
    EXPECT_FALSE(BoolExpr::conj(lt5, eq5)->eval(params));
    EXPECT_TRUE(BoolExpr::negate(lt5)->eval(params));
    EXPECT_TRUE(BoolExpr::always_true()->eval(params));
}

lts::Rate RateGen_passive() { return lts::RatePassive{}; }

/// A minimal two-component system: a producer handing items to a consumer.
ArchiType producer_consumer(lts::Rate produce_rate, lts::Rate hand_rate) {
    ArchiType archi;
    archi.name = "ProdCons";

    ElemType producer;
    producer.name = "Producer_Type";
    producer.behaviors = {
        BehaviorDef{"Making", {}, {alt({act("produce", produce_rate)}, "Handing")}},
        BehaviorDef{"Handing", {}, {alt({act("hand_over", hand_rate)}, "Making")}},
    };
    producer.output_interactions = {"hand_over"};

    ElemType consumer;
    consumer.name = "Consumer_Type";
    consumer.behaviors = {
        BehaviorDef{"Waiting", {}, {alt({act("take", RateGen_passive())}, "Waiting")}},
    };
    consumer.input_interactions = {"take"};

    archi.elem_types = {producer, consumer};
    archi.instances = {Instance{"P", "Producer_Type", {}}, Instance{"Q", "Consumer_Type", {}}};
    archi.attachments = {Attachment{"P", "hand_over", "Q", "take"}};
    return archi;
}

TEST(Validate, AcceptsWellFormedModel) {
    const ArchiType archi =
        producer_consumer(lts::RateExp{1.0}, lts::RateImmediate{1, 1.0});
    EXPECT_NO_THROW(validate(archi));
}

TEST(Validate, RejectsUnknownBehaviourInvocation) {
    ArchiType archi = producer_consumer(lts::RateExp{1.0}, lts::RateImmediate{});
    archi.elem_types[0].behaviors[0].alternatives[0].continuation.behavior = "Ghost";
    EXPECT_THROW(validate(archi), ModelError);
}

TEST(Validate, RejectsArityMismatch) {
    ArchiType archi = producer_consumer(lts::RateExp{1.0}, lts::RateImmediate{});
    archi.elem_types[0].behaviors[0].alternatives[0].continuation.args.push_back(lit(3));
    EXPECT_THROW(validate(archi), ModelError);
}

TEST(Validate, RejectsUnknownInstanceType) {
    ArchiType archi = producer_consumer(lts::RateExp{1.0}, lts::RateImmediate{});
    archi.instances[0].type = "Missing_Type";
    EXPECT_THROW(validate(archi), ModelError);
}

TEST(Validate, RejectsAttachmentFromInputPort) {
    ArchiType archi = producer_consumer(lts::RateExp{1.0}, lts::RateImmediate{});
    archi.attachments[0] = Attachment{"Q", "take", "P", "hand_over"};
    EXPECT_THROW(validate(archi), ModelError);
}

TEST(Validate, RejectsDoubleAttachment) {
    ArchiType archi = producer_consumer(lts::RateExp{1.0}, lts::RateImmediate{});
    archi.attachments.push_back(archi.attachments[0]);
    EXPECT_THROW(validate(archi), ModelError);
}

TEST(Validate, RejectsDuplicateInstanceNames) {
    ArchiType archi = producer_consumer(lts::RateExp{1.0}, lts::RateImmediate{});
    archi.instances.push_back(archi.instances[0]);
    EXPECT_THROW(validate(archi), ModelError);
}

TEST(Validate, RejectsEmptyActionSequence) {
    ArchiType archi = producer_consumer(lts::RateExp{1.0}, lts::RateImmediate{});
    archi.elem_types[0].behaviors[0].alternatives[0].actions.clear();
    EXPECT_THROW(validate(archi), ModelError);
}

TEST(LocalLts, UnfoldsParameterisedBuffer) {
    ElemType buffer;
    buffer.name = "Buffer_Type";
    BehaviorDef def{"Buf", {"n", "cap"}, {}};
    def.alternatives.push_back(alt({act("put", lts::RatePassive{})}, "Buf",
                                   {plus(pvar(0, "n"), lit(1)), pvar(1, "cap")},
                                   cmp_lt(pvar(0, "n"), pvar(1, "cap"))));
    def.alternatives.push_back(alt({act("get", lts::RatePassive{})}, "Buf",
                                   {minus(pvar(0, "n"), lit(1)), pvar(1, "cap")},
                                   cmp_gt(pvar(0, "n"), lit(0))));
    buffer.behaviors = {def};
    buffer.input_interactions = {"put", "get"};

    lts::ActionTable actions;
    const long args[] = {0, 3};
    const LocalLts local = build_local_lts(buffer, args, actions, 1000);
    EXPECT_EQ(local.out.size(), 4u);  // occupancies 0..3
    EXPECT_EQ(local.state_names[local.initial], "Buf(0,3)");
    // Occupancy 0 has only "put"; occupancy 3 only "get"; middle both.
    EXPECT_EQ(local.out[local.initial].size(), 1u);
}

TEST(LocalLts, GuardsAgainstUnboundedParameters) {
    ElemType counter;
    counter.name = "Counter_Type";
    BehaviorDef def{"Count", {"n"}, {}};
    def.alternatives.push_back(
        alt({act("tick", lts::RateExp{1.0})}, "Count", {plus(pvar(0, "n"), lit(1))}));
    counter.behaviors = {def};

    lts::ActionTable actions;
    const long args[] = {0};
    EXPECT_THROW((void)build_local_lts(counter, args, actions, 50), ModelError);
}

TEST(Compose, SynchronisedLabelNamesBothParties) {
    const ArchiType archi =
        producer_consumer(lts::RateExp{2.0}, lts::RateImmediate{1, 1.0});
    const ComposedModel model = compose(archi);
    EXPECT_NE(model.graph.actions()->find("P.hand_over#Q.take"), kNoSymbol);
    EXPECT_NE(model.graph.actions()->find("P.produce"), kNoSymbol);
}

TEST(Compose, PassiveInheritsActiveRate) {
    const ArchiType archi =
        producer_consumer(lts::RateExp{2.0}, lts::RateExp{7.0});
    const ComposedModel model = compose(archi);
    bool found = false;
    for (lts::StateId s = 0; s < model.graph.num_states(); ++s) {
        for (const lts::Transition& t : model.graph.out(s)) {
            if (model.graph.actions()->name(t.action) == "P.hand_over#Q.take") {
                const auto* rate = std::get_if<lts::RateExp>(&t.rate);
                ASSERT_NE(rate, nullptr);
                EXPECT_DOUBLE_EQ(rate->rate, 7.0);
                found = true;
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(Compose, TwoActivePartiesAreRejected) {
    ArchiType archi = producer_consumer(lts::RateExp{2.0}, lts::RateExp{7.0});
    // Make the consumer's take active as well.
    archi.elem_types[1].behaviors[0].alternatives[0].actions[0].rate = lts::RateExp{1.0};
    EXPECT_THROW((void)compose(archi), ModelError);
}

TEST(Compose, UnattachedInteractionIsBlocked) {
    ArchiType archi = producer_consumer(lts::RateExp{2.0}, lts::RateImmediate{});
    archi.attachments.clear();
    const ComposedModel model = compose(archi);
    // P can produce, then is stuck in Handing (hand_over blocked).
    EXPECT_EQ(model.graph.num_states(), 2u);
    const auto deadlocks = lts::deadlock_states(model.graph);
    ASSERT_EQ(deadlocks.size(), 1u);
}

TEST(Compose, TracksLocalStatesPerInstance) {
    const ArchiType archi =
        producer_consumer(lts::RateExp{2.0}, lts::RateImmediate{1, 1.0});
    const ComposedModel model = compose(archi, ComposeOptions{true, 1000});
    ASSERT_EQ(model.instance_names.size(), 2u);
    EXPECT_EQ(model.instance_index("P"), 0u);
    EXPECT_EQ(model.instance_index("Q"), 1u);
    EXPECT_EQ(model.local_state_name(model.graph.initial(), 0), "Making");
    EXPECT_THROW((void)model.instance_index("Z"), ModelError);
}

TEST(Compose, RecordsGlobalStateNamesOnRequest) {
    const ArchiType archi =
        producer_consumer(lts::RateExp{2.0}, lts::RateImmediate{1, 1.0});
    const ComposedModel with_names = compose(archi, ComposeOptions{true, 1000});
    EXPECT_NE(with_names.graph.state_name(0).find("P:Making"), std::string::npos);
    const ComposedModel without = compose(archi, ComposeOptions{false, 1000});
    EXPECT_TRUE(without.graph.state_name(0).empty());
}

TEST(Compose, StateLimitIsEnforced) {
    const ArchiType archi =
        producer_consumer(lts::RateExp{2.0}, lts::RateImmediate{1, 1.0});
    EXPECT_THROW((void)compose(archi, ComposeOptions{false, 1}), ModelError);
}

TEST(Measure, StateMaskSelectsLocalStatesByPrefix) {
    const ArchiType archi =
        producer_consumer(lts::RateExp{2.0}, lts::RateImmediate{1, 1.0});
    const ComposedModel model = compose(archi);
    const auto mask = state_mask(model, InStatePredicate{"P", "Making"});
    ASSERT_EQ(mask.size(), model.graph.num_states());
    EXPECT_TRUE(mask[model.graph.initial()]);
}

TEST(Measure, EnabledPredicateMatchesEitherParty) {
    const ArchiType archi =
        producer_consumer(lts::RateExp{2.0}, lts::RateImmediate{1, 1.0});
    const ComposedModel model = compose(archi);
    const auto by_producer = action_mask(model, EnabledPredicate{"P", "hand_over"});
    const auto by_consumer = action_mask(model, EnabledPredicate{"Q", "take"});
    EXPECT_EQ(by_producer, by_consumer);
}

TEST(Measure, ActionMaskRejectsInStatePredicates) {
    const ArchiType archi =
        producer_consumer(lts::RateExp{2.0}, lts::RateImmediate{1, 1.0});
    const ComposedModel model = compose(archi);
    EXPECT_THROW((void)action_mask(model, InStatePredicate{"P", "Making"}), Error);
}

TEST(Measure, ActionsOfInstanceCoversInternalAndSyncLabels) {
    const ArchiType archi =
        producer_consumer(lts::RateExp{2.0}, lts::RateImmediate{1, 1.0});
    const ComposedModel model = compose(archi);
    const auto actions = actions_of_instance(model, "P");
    // P.produce and P.hand_over#Q.take.
    EXPECT_EQ(actions.size(), 2u);
}

}  // namespace
}  // namespace dpma::adl
