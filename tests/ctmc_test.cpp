#include <gtest/gtest.h>

#include <cmath>

#include "adl/compose.hpp"
#include "core/error.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/builder.hpp"

namespace dpma::ctmc {
namespace {

using models::act;
using models::alt;

/// Birth-death chain of n states: up-rate lambda, down-rate mu.
Ctmc birth_death(std::size_t n, double lambda, double mu) {
    Ctmc chain(n);
    for (TangibleId i = 0; i + 1 < n; ++i) {
        chain.add_rate(i, i + 1, lambda);
        chain.add_rate(i + 1, i, mu);
    }
    return chain;
}

/// Analytic M/M/1/K distribution: pi_i proportional to rho^i.
std::vector<double> mm1k(std::size_t n, double rho) {
    std::vector<double> pi(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        pi[i] = std::pow(rho, static_cast<double>(i));
        total += pi[i];
    }
    for (double& p : pi) p /= total;
    return pi;
}

TEST(Ctmc, AccumulatesParallelRates) {
    Ctmc chain(2);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(0, 1, 2.5);
    ASSERT_EQ(chain.row(0).size(), 1u);
    EXPECT_DOUBLE_EQ(chain.row(0)[0].rate, 3.5);
    EXPECT_DOUBLE_EQ(chain.exit_rate(0), 3.5);
}

TEST(Ctmc, IgnoresSelfLoops) {
    Ctmc chain(1);
    chain.add_rate(0, 0, 5.0);
    EXPECT_TRUE(chain.row(0).empty());
    EXPECT_DOUBLE_EQ(chain.exit_rate(0), 0.0);
}

TEST(Ctmc, RejectsNonPositiveRates) {
    Ctmc chain(2);
    EXPECT_THROW(chain.add_rate(0, 1, 0.0), Error);
    EXPECT_THROW(chain.add_rate(0, 1, -1.0), Error);
}

TEST(SteadyState, TwoStateClosedForm) {
    Ctmc chain(2);
    chain.add_rate(0, 1, 3.0);
    chain.add_rate(1, 0, 1.0);
    const auto pi = steady_state(chain);
    EXPECT_NEAR(pi[0], 0.25, 1e-12);
    EXPECT_NEAR(pi[1], 0.75, 1e-12);
}

TEST(SteadyState, GthMatchesMm1kClosedForm) {
    const double lambda = 2.0, mu = 3.0;
    const auto pi = steady_state_gth(birth_death(8, lambda, mu));
    const auto expect = mm1k(8, lambda / mu);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(pi[i], expect[i], 1e-12) << "state " << i;
    }
}

TEST(SteadyState, GaussSeidelMatchesGth) {
    const Ctmc chain = birth_death(25, 1.7, 1.1);
    const auto a = steady_state_gth(chain);
    const auto b = steady_state_gauss_seidel(chain);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i], b[i], 1e-9);
    }
}

TEST(SteadyState, PowerIterationMatchesGth) {
    const Ctmc chain = birth_death(12, 0.9, 1.4);
    const auto a = steady_state_gth(chain);
    const auto b = steady_state_power(chain, SolveOptions{1e-14, 2'000'000, 1500});
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i], b[i], 1e-8);
    }
}

TEST(SteadyState, SumsToOne) {
    const auto pi = steady_state(birth_death(40, 2.3, 2.3));
    double total = 0.0;
    for (double p : pi) total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(SteadyState, SatisfiesGlobalBalance) {
    const Ctmc chain = birth_death(10, 1.3, 0.8);
    const auto pi = steady_state(chain);
    // flow out == flow in for every state
    std::vector<double> inflow(10, 0.0);
    for (TangibleId s = 0; s < 10; ++s) {
        for (const RateEntry& e : chain.row(s)) {
            inflow[e.target] += pi[s] * e.rate;
        }
    }
    for (TangibleId s = 0; s < 10; ++s) {
        EXPECT_NEAR(inflow[s], pi[s] * chain.exit_rate(s), 1e-10) << "state " << s;
    }
}

TEST(SteadyState, TransientPrefixGetsZeroMass) {
    // 0 -> 1 <-> 2: state 0 is transient.
    Ctmc chain(3);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(1, 2, 2.0);
    chain.add_rate(2, 1, 2.0);
    const auto pi = steady_state(chain);
    EXPECT_DOUBLE_EQ(pi[0], 0.0);
    EXPECT_NEAR(pi[1], 0.5, 1e-12);
    EXPECT_NEAR(pi[2], 0.5, 1e-12);
}

TEST(SteadyState, TwoRecurrentClassesAreRejected) {
    Ctmc chain(4);
    chain.add_rate(0, 1, 1.0);  // class {1}
    chain.add_rate(0, 2, 1.0);  // class {2,3}
    chain.add_rate(2, 3, 1.0);
    chain.add_rate(3, 2, 1.0);
    EXPECT_THROW((void)steady_state(chain), NumericalError);
}

TEST(BottomSccs, IdentifiesRecurrentClasses) {
    Ctmc chain(5);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(1, 2, 1.0);
    chain.add_rate(2, 1, 1.0);  // {1,2} bottom
    chain.add_rate(0, 3, 1.0);
    chain.add_rate(3, 4, 1.0);
    chain.add_rate(4, 3, 1.0);  // {3,4} bottom
    const auto bottoms = bottom_sccs(chain);
    EXPECT_EQ(bottoms.size(), 2u);
}

TEST(BottomSccs, AbsorbingStateIsItsOwnClass) {
    Ctmc chain(2);
    chain.add_rate(0, 1, 1.0);
    const auto bottoms = bottom_sccs(chain);
    ASSERT_EQ(bottoms.size(), 1u);
    ASSERT_EQ(bottoms[0].size(), 1u);
    EXPECT_EQ(bottoms[0][0], 1u);
}

TEST(Irreducibility, DetectsBothDirections) {
    Ctmc ring(3);
    ring.add_rate(0, 1, 1.0);
    ring.add_rate(1, 2, 1.0);
    ring.add_rate(2, 0, 1.0);
    EXPECT_TRUE(is_irreducible(ring));

    Ctmc line(3);
    line.add_rate(0, 1, 1.0);
    line.add_rate(1, 2, 1.0);
    EXPECT_FALSE(is_irreducible(line));
}

TEST(Transient, ConvergesToSteadyState) {
    Ctmc chain(2);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(1, 0, 2.0);
    const auto pi = transient(chain, {{0, 1.0}}, 200.0);
    EXPECT_NEAR(pi[0], 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(pi[1], 1.0 / 3.0, 1e-9);
}

TEST(Transient, MatchesTwoStateClosedForm) {
    // P(in 1 at t) = (lambda/(lambda+mu)) (1 - exp(-(lambda+mu) t))
    const double lambda = 1.5, mu = 0.5, t = 0.7;
    Ctmc chain(2);
    chain.add_rate(0, 1, lambda);
    chain.add_rate(1, 0, mu);
    const auto pi = transient(chain, {{0, 1.0}}, t);
    const double expect = lambda / (lambda + mu) * (1.0 - std::exp(-(lambda + mu) * t));
    EXPECT_NEAR(pi[1], expect, 1e-9);
}

TEST(Transient, TimeZeroReturnsInitialDistribution) {
    Ctmc chain(3);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(1, 2, 1.0);
    chain.add_rate(2, 0, 1.0);
    const auto pi = transient(chain, {{1, 0.4}, {2, 0.6}}, 0.0);
    EXPECT_DOUBLE_EQ(pi[0], 0.0);
    EXPECT_NEAR(pi[1], 0.4, 1e-12);
    EXPECT_NEAR(pi[2], 0.6, 1e-12);
}

// The recurrence-based weight stream must reproduce the direct
// e^{-lt} lt^k / k! evaluation (one lgamma per term, the formula the
// uniformisation loops used before) across the whole magnitude range the
// solvers see — from sub-unit lt to the lt ~ 1e5 of long battery horizons.
TEST(PoissonWeights, MatchesLgammaFormulaUpTo1e5) {
    for (const double lt : {0.0, 1e-6, 0.5, 3.0, 40.0, 1e3, 1e5}) {
        PoissonWeights weights(lt);
        double cumulative = 0.0;
        for (std::size_t k = 0;; ++k, weights.advance()) {
            const double log_w =
                -lt + static_cast<double>(k) * std::log(lt > 0 ? lt : 1e-300) -
                std::lgamma(static_cast<double>(k) + 1.0);
            const double reference = std::exp(log_w);
            const double w = weights.current();
            if (reference > 1e-280) {
                // Representable weights: the recurrence accumulates ~k ulps
                // of relative error, invisible at the 1e-12 thresholds.
                EXPECT_NEAR(w, reference, 1e-9 * reference)
                    << "lt=" << lt << " k=" << k;
            } else {
                // Underflowing head: the stream reports (essentially) zero.
                EXPECT_LE(w, 1e-280) << "lt=" << lt << " k=" << k;
            }
            cumulative += w;
            if (cumulative >= 1.0 - 1e-12 && static_cast<double>(k) >= lt) break;
        }
        // The stream sums to 1 like a probability distribution should.
        EXPECT_NEAR(cumulative, 1.0, 1e-9) << "lt=" << lt;
    }
}

/// A small architecture exercising vanishing-state elimination: a timed
/// step into an immediate probabilistic branch.
adl::ArchiType vanishing_model(double p_left, int priority_right) {
    adl::ArchiType archi;
    archi.name = "Vanishing";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"Start", {},
            {alt({act("step", lts::RateExp{1.0})}, "Choice")}},
        adl::BehaviorDef{"Choice", {},
            {alt({act("go_left", lts::RateImmediate{1, p_left})}, "Left"),
             alt({act("go_right", lts::RateImmediate{priority_right, 1.0 - p_left})},
                 "Right")}},
        adl::BehaviorDef{"Left", {},
            {alt({act("reset_l", lts::RateExp{2.0})}, "Start")}},
        adl::BehaviorDef{"Right", {},
            {alt({act("reset_r", lts::RateExp{4.0})}, "Start")}},
    };
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    return archi;
}

TEST(BuildMarkov, EliminatesVanishingStates) {
    const adl::ComposedModel model = adl::compose(vanishing_model(0.25, 1));
    const MarkovModel markov = build_markov(model);
    // Tangible: Start, Left, Right; vanishing: Choice.
    EXPECT_EQ(markov.chain.num_states(), 3u);
    EXPECT_EQ(markov.vanishing_topo_order.size(), 1u);

    const auto pi = steady_state(markov.chain);
    // Mean cycle: 1 (Start) + 0.25 * 1/2 + 0.75 * 1/4  => check Start's
    // probability equals its sojourn fraction.
    const double cycle = 1.0 + 0.25 * 0.5 + 0.75 * 0.25;
    const TangibleId start = markov.tangible_of[model.graph.initial()];
    EXPECT_NEAR(pi[start], 1.0 / cycle, 1e-12);
}

TEST(BuildMarkov, MaximalProgressFiltersLowerPriority) {
    // go_right has priority 5: go_left must never fire.
    const adl::ComposedModel model = adl::compose(vanishing_model(0.25, 5));
    const MarkovModel markov = build_markov(model);
    const auto pi = steady_state(markov.chain);
    const auto freq = action_frequencies(markov, model, pi);
    const Symbol left = model.graph.actions()->find("X.go_left");
    const Symbol right = model.graph.actions()->find("X.go_right");
    ASSERT_NE(left, kNoSymbol);
    ASSERT_NE(right, kNoSymbol);
    EXPECT_DOUBLE_EQ(freq[left], 0.0);
    EXPECT_GT(freq[right], 0.0);
}

TEST(BuildMarkov, ImmediateFrequenciesMatchBranchWeights) {
    const adl::ComposedModel model = adl::compose(vanishing_model(0.25, 1));
    const MarkovModel markov = build_markov(model);
    const auto pi = steady_state(markov.chain);
    const auto freq = action_frequencies(markov, model, pi);
    const double f_step = freq[model.graph.actions()->find("X.step")];
    const double f_left = freq[model.graph.actions()->find("X.go_left")];
    const double f_right = freq[model.graph.actions()->find("X.go_right")];
    EXPECT_NEAR(f_left, 0.25 * f_step, 1e-12);
    EXPECT_NEAR(f_right, 0.75 * f_step, 1e-12);
    // Flow conservation: everything that enters Choice leaves it.
    EXPECT_NEAR(f_left + f_right, f_step, 1e-12);
}

TEST(BuildMarkov, RejectsFunctionalModels) {
    adl::ArchiType archi = vanishing_model(0.5, 1);
    archi.elem_types[0].behaviors[0].alternatives[0].actions[0].rate =
        lts::RateUnspecified{};
    const adl::ComposedModel model = adl::compose(archi);
    EXPECT_THROW((void)build_markov(model), ModelError);
}

TEST(BuildMarkov, RejectsGeneralDistributions) {
    adl::ArchiType archi = vanishing_model(0.5, 1);
    archi.elem_types[0].behaviors[0].alternatives[0].actions[0].rate =
        lts::RateGeneral{Dist::deterministic(1.0)};
    const adl::ComposedModel model = adl::compose(archi);
    EXPECT_THROW((void)build_markov(model), ModelError);
}

TEST(BuildMarkov, DetectsImmediateCycles) {
    adl::ArchiType archi;
    archi.name = "Livelock";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"A", {}, {alt({act("ping", lts::RateImmediate{}) }, "B")}},
        adl::BehaviorDef{"B", {}, {alt({act("pong", lts::RateImmediate{}) }, "A")}},
    };
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    const adl::ComposedModel model = adl::compose(archi);
    EXPECT_THROW((void)build_markov(model), NumericalError);
}

TEST(BuildMarkov, DetectsDeadlocks) {
    adl::ArchiType archi;
    archi.name = "Dead";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"A", {}, {alt({act("once", lts::RateExp{1.0})}, "B")}},
        adl::BehaviorDef{"B", {}, {alt({act("blocked", lts::RatePassive{})}, "B")}},
    };
    t.input_interactions = {"blocked"};
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    const adl::ComposedModel model = adl::compose(archi);
    EXPECT_THROW((void)build_markov(model), ModelError);
    EXPECT_NO_THROW((void)build_markov(model, /*allow_absorbing=*/true));
}

TEST(BuildMarkov, InitialDistributionPushedThroughVanishing) {
    // Make the initial state vanishing by starting in Choice.
    adl::ArchiType archi = vanishing_model(0.25, 1);
    std::swap(archi.elem_types[0].behaviors[0], archi.elem_types[0].behaviors[1]);
    const adl::ComposedModel model = adl::compose(archi);
    const MarkovModel markov = build_markov(model);
    double total = 0.0;
    for (const auto& [state, p] : markov.initial_distribution) {
        (void)state;
        total += p;
    }
    EXPECT_EQ(markov.initial_distribution.size(), 2u);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Reward, StateProbabilityOfLocalState) {
    const adl::ComposedModel model = adl::compose(vanishing_model(0.25, 1));
    const MarkovModel markov = build_markov(model);
    const auto pi = steady_state(markov.chain);
    const double p_start =
        state_probability(markov, model, pi, adl::InStatePredicate{"X", "Start"});
    const double cycle = 1.0 + 0.25 * 0.5 + 0.75 * 0.25;
    EXPECT_NEAR(p_start, 1.0 / cycle, 1e-12);
}

TEST(Reward, MeasureCombinesStateAndTransClauses) {
    const adl::ComposedModel model = adl::compose(vanishing_model(0.25, 1));
    const MarkovModel markov = build_markov(model);
    const auto pi = steady_state(markov.chain);
    adl::Measure m;
    m.name = "mixed";
    m.clauses = {adl::state_reward_in("X", "Start", 10.0),
                 adl::trans_reward("X", "step", 3.0)};
    const double value = evaluate_measure(markov, model, pi, m);
    const double cycle = 1.0 + 0.25 * 0.5 + 0.75 * 0.25;
    const double p_start = 1.0 / cycle;
    // freq(step) = pi(Start) * 1.0
    EXPECT_NEAR(value, 10.0 * p_start + 3.0 * p_start, 1e-12);
}

}  // namespace
}  // namespace dpma::ctmc
