#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "core/error.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "exp/cache.hpp"
#include "exp/experiment.hpp"
#include "exp/pool.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "models/rpc.hpp"
#include "sim/gsmp.hpp"
#include "sim/rng.hpp"

namespace dpma::exp {
namespace {

TEST(Axis, LinspaceCoversBothEndpoints) {
    const Axis axis = Axis::linspace("x", 2.0, 10.0, 5);
    ASSERT_EQ(axis.values.size(), 5u);
    EXPECT_DOUBLE_EQ(axis.values.front(), 2.0);
    EXPECT_DOUBLE_EQ(axis.values[2], 6.0);
    EXPECT_DOUBLE_EQ(axis.values.back(), 10.0);
    EXPECT_EQ(Axis::linspace("x", 3.0, 9.0, 1).values,
              std::vector<double>{3.0});
}

TEST(Axis, LogspaceIsGeometric) {
    const Axis axis = Axis::logspace("x", 1.0, 100.0, 3);
    ASSERT_EQ(axis.values.size(), 3u);
    EXPECT_DOUBLE_EQ(axis.values.front(), 1.0);
    EXPECT_NEAR(axis.values[1], 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(axis.values.back(), 100.0);
}

TEST(Grid, CartesianProductLastAxisFastest) {
    Grid grid;
    grid.axis(Axis::list("a", {1.0, 2.0, 3.0})).axis(Axis::toggle("dpm"));
    EXPECT_EQ(grid.size(), 6u);
    const Point p = grid.point(3);  // a=2, dpm=1
    EXPECT_DOUBLE_EQ(p.at("a"), 2.0);
    EXPECT_TRUE(p.flag("dpm"));
    EXPECT_FALSE(grid.point(2).flag("dpm"));
    EXPECT_THROW((void)p.at("nope"), Error);
    EXPECT_THROW((void)grid.point(6), Error);
}

TEST(Grid, RejectsDuplicateAxisNames) {
    Grid grid;
    grid.axis(Axis::toggle("dpm"));
    EXPECT_THROW(grid.axis(Axis::toggle("dpm")), Error);
}

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    std::vector<std::atomic<int>> hits(997);
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedRunDoesNotDeadlock) {
    ThreadPool pool(3);
    std::atomic<int> total{0};
    pool.run(4, [&](std::size_t) {
        pool.run(8, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, SingleJobRunsInCaller) {
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    pool.run(5, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ThreadPool, RethrowsTheFirstJobException) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.run(64,
                          [&](std::size_t i) {
                              if (i == 7) throw Error("boom");
                          }),
                 Error);
}

TEST(Env, DefaultJobsRejectsGarbage) {
    unsetenv("DPMA_JOBS");
    const std::size_t fallback = default_jobs();
    EXPECT_GE(fallback, 1u);
    setenv("DPMA_JOBS", "3", 1);
    EXPECT_EQ(default_jobs(), 3u);
    setenv("DPMA_JOBS", "garbage", 1);
    EXPECT_EQ(default_jobs(), fallback);
    setenv("DPMA_JOBS", "-2", 1);
    EXPECT_EQ(default_jobs(), fallback);
    setenv("DPMA_JOBS", "0", 1);
    EXPECT_EQ(default_jobs(), fallback);
    setenv("DPMA_JOBS", "2junk", 1);
    EXPECT_EQ(default_jobs(), fallback);
    unsetenv("DPMA_JOBS");
}

TEST(Env, PositiveDoubleRejectsPartialParses) {
    unsetenv("DPMA_TEST_SCALE");
    EXPECT_DOUBLE_EQ(env_positive_double("DPMA_TEST_SCALE", 1.5), 1.5);
    setenv("DPMA_TEST_SCALE", "0.25", 1);
    EXPECT_DOUBLE_EQ(env_positive_double("DPMA_TEST_SCALE", 1.5), 0.25);
    setenv("DPMA_TEST_SCALE", "12abc", 1);
    EXPECT_DOUBLE_EQ(env_positive_double("DPMA_TEST_SCALE", 1.5), 1.5);
    setenv("DPMA_TEST_SCALE", "-3", 1);
    EXPECT_DOUBLE_EQ(env_positive_double("DPMA_TEST_SCALE", 1.5), 1.5);
    setenv("DPMA_TEST_SCALE", "0", 1);
    EXPECT_DOUBLE_EQ(env_positive_double("DPMA_TEST_SCALE", 1.5), 1.5);
    unsetenv("DPMA_TEST_SCALE");
}

TEST(Rng, ThreeLevelSeedSplitComposesTwoLevel) {
    EXPECT_EQ(sim::Rng::derive_seed(9, 4, 7),
              sim::Rng::derive_seed(sim::Rng::derive_seed(9, 4), 7));
    EXPECT_NE(sim::Rng::derive_seed(9, 4, 7), sim::Rng::derive_seed(9, 7, 4));
}

TEST(Runner, AnalyticSweepBitIdenticalAcrossJobCounts) {
    const std::vector<double> timeouts = {0.0, 2.0, 5.0, 10.0, 25.0};
    RunOptions serial;
    serial.jobs = 1;
    RunOptions parallel;
    parallel.jobs = 8;
    const ResultSet a = run(bench::rpc_markov_experiment(timeouts, true), serial);
    const ResultSet b = run(bench::rpc_markov_experiment(timeouts, true), parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).result.values, b.at(i).result.values) << "point " << i;
    }
}

TEST(Runner, SimulationSweepBitIdenticalAcrossJobCounts) {
    unsetenv("DPMA_BENCH_SCALE");
    const std::vector<double> timeouts = {5.0, 11.3};
    RunOptions serial;
    serial.jobs = 1;
    serial.base_seed = 42;
    RunOptions parallel;
    parallel.jobs = 8;
    parallel.base_seed = 42;
    const auto experiment = [&] {
        return bench::rpc_general_experiment(timeouts, true, 4, 1500.0);
    };
    const ResultSet a = run(experiment(), serial);
    const ResultSet b = run(experiment(), parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).result.values, b.at(i).result.values) << "point " << i;
        EXPECT_EQ(a.at(i).result.half_widths, b.at(i).result.half_widths)
            << "point " << i;
    }
}

TEST(Runner, ParallelReplicationsMatchSerialBitForBit) {
    unsetenv("DPMA_BENCH_SCALE");
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::general(5.0, true));
    const sim::Simulator simulator(model, models::rpc::measures());
    sim::SimOptions options;
    options.warmup = 100.0;
    options.horizon = 1000.0;
    options.seed = 7;
    const auto serial = sim::simulate_replications(simulator, options, 6, 0.90);
    ThreadPool pool(4);
    const auto parallel = simulate_replications(simulator, options, 6, 0.90, pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t m = 0; m < serial.size(); ++m) {
        EXPECT_EQ(serial[m].samples, parallel[m].samples);
        EXPECT_EQ(serial[m].mean, parallel[m].mean);
        EXPECT_EQ(serial[m].half_width, parallel[m].half_width);
    }
}

TEST(Cache, CountsHitsAndMissesAndSharesInstances) {
    ModelCache cache;
    const auto build = [] {
        return models::rpc::compose(models::rpc::markovian(5.0, true));
    };
    const auto first = cache.composed("rpc", build);
    const auto second = cache.composed("rpc", build);
    EXPECT_EQ(first.get(), second.get());
    const auto markov = cache.markov("rpc", [&] { return ctmc::build_markov(*first); });
    (void)cache.markov("rpc", [&] { return ctmc::build_markov(*first); });
    EXPECT_GT(markov->chain.num_states(), 0u);
    const ModelCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 2u);
    cache.clear();
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(Cache, PatchedSkeletonSolvesIdenticallyToFullCompose) {
    const adl::ComposedModel skeleton =
        models::rpc::compose(models::rpc::markovian(1.0, true));
    const adl::ComposedModel patched =
        with_exp_rate(skeleton, "DPM", "send_shutdown", 1.0 / 4.0);
    const adl::ComposedModel direct =
        models::rpc::compose(models::rpc::markovian(4.0, true));
    ASSERT_EQ(patched.graph.num_states(), direct.graph.num_states());

    const auto measures = models::rpc::measures();
    const ctmc::MarkovModel mp = ctmc::build_markov(patched);
    const ctmc::MarkovModel md = ctmc::build_markov(direct);
    const auto pip = ctmc::steady_state(mp.chain);
    const auto pid = ctmc::steady_state(md.chain);
    for (const adl::Measure& m : measures) {
        EXPECT_EQ(ctmc::evaluate_measure(mp, patched, pip, m),
                  ctmc::evaluate_measure(md, direct, pid, m))
            << m.name;
    }
}

TEST(Cache, PatchRefusesMissingOrNonExponentialTargets) {
    const adl::ComposedModel markov_model =
        models::rpc::compose(models::rpc::markovian(5.0, true));
    EXPECT_THROW((void)with_exp_rate(markov_model, "DPM", "no_such_action", 2.0),
                 ModelError);
    const adl::ComposedModel general_model =
        models::rpc::compose(models::rpc::general(5.0, true));
    // In the general model the shutdown is deterministic, not exponential.
    EXPECT_THROW((void)with_exp_rate(general_model, "DPM", "send_shutdown", 2.0),
                 ModelError);
    EXPECT_THROW((void)with_dist(markov_model, "DPM", "send_shutdown",
                                 Dist::deterministic(5.0)),
                 ModelError);
    // The legitimate patches succeed.
    EXPECT_NO_THROW((void)with_dist(general_model, "DPM", "send_shutdown",
                                    Dist::deterministic(7.0)));
    EXPECT_NO_THROW((void)with_exp_rate(markov_model, "DPM", "send_shutdown", 2.0));
}

ResultSet demo_results() {
    ResultSet set("demo", {"x", "dpm"}, {"tput", "energy"});
    Point p0;
    p0.index = 0;
    p0.coords = {{"x", 1.5}, {"dpm", 1.0}};
    PointResult r0;
    r0.values = {0.25, 3.0};
    r0.half_widths = {0.01, 0.2};
    set.add(p0, r0);
    Point p1;
    p1.index = 1;
    p1.coords = {{"x", 2.5}, {"dpm", 0.0}};
    PointResult r1;
    r1.values = {0.5, 2.0};
    set.add(p1, r1);
    return set;
}

TEST(Report, CsvHasHeaderAndOneRowPerPoint) {
    const ResultSet set = demo_results();
    const std::string csv = set.csv();
    EXPECT_NE(csv.find("x,dpm,tput,tput_hw,energy,energy_hw\n"), std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_NE(csv.find("2.5,0,0.5,0,2,0"), std::string::npos);
}

TEST(Report, JsonHasTheDocumentedShape) {
    const ResultSet set = demo_results();
    const std::string json = set.json();
    EXPECT_NE(json.find("\"experiment\": \"demo\""), std::string::npos);
    EXPECT_NE(json.find("\"params\": [\"x\", \"dpm\"]"), std::string::npos);
    EXPECT_NE(json.find("\"measures\": [\"tput\", \"energy\"]"), std::string::npos);
    EXPECT_NE(json.find("\"points\": ["), std::string::npos);
    EXPECT_NE(json.find("\"values\": {\"tput\": 0.5, \"energy\": 2}"),
              std::string::npos);
    EXPECT_EQ(set.value(0, "energy"), 3.0);
    EXPECT_EQ(set.half_width(1, "tput"), 0.0);
    EXPECT_THROW((void)set.value(0, "nope"), Error);
}

TEST(Report, RejectsMisalignedResults) {
    ResultSet set("demo", {"x"}, {"a", "b"});
    Point p;
    p.coords = {{"x", 1.0}};
    PointResult one_value;
    one_value.values = {1.0};
    EXPECT_THROW(set.add(p, one_value), Error);
    PointResult misaligned_hw;
    misaligned_hw.values = {1.0, 2.0};
    misaligned_hw.half_widths = {0.1};
    EXPECT_THROW(set.add(p, misaligned_hw), Error);
}

TEST(Harness, TableFromResultSetPrints) {
    const ResultSet set = demo_results();
    bench::Table table = bench::table_from(set);
    EXPECT_NO_THROW(table.print());
}

TEST(Harness, StreamingExperimentMatchesDirectPoint) {
    const ResultSet sweep =
        run(bench::streaming_markov_experiment({50.0}, true), RunOptions{});
    const bench::StreamingPoint engine =
        bench::streaming_point_from(sweep.at(0).result.values, {});
    const bench::StreamingPoint direct = bench::streaming_markov_point(50.0, true);
    EXPECT_EQ(engine.energy_per_frame, direct.energy_per_frame);
    EXPECT_EQ(engine.loss, direct.loss);
    EXPECT_EQ(engine.miss, direct.miss);
    EXPECT_EQ(engine.quality, direct.quality);
}

TEST(Harness, RpcExperimentMatchesDirectPoint) {
    const ResultSet sweep =
        run(bench::rpc_markov_experiment({7.5}, true), RunOptions{});
    const bench::RpcPoint engine = bench::rpc_point_from(sweep.at(0).result.values, {});
    const bench::RpcPoint direct = bench::rpc_markov_point(7.5, true);
    EXPECT_EQ(engine.throughput, direct.throughput);
    EXPECT_EQ(engine.energy_per_request, direct.energy_per_request);
    EXPECT_EQ(engine.waiting_per_request, direct.waiting_per_request);
}

TEST(Report, JsonCarriesPerPointElapsed) {
    const ResultSet sweep =
        run(bench::rpc_markov_experiment({5.0, 10.0}, true), RunOptions{});
    EXPECT_NE(sweep.json().find("\"elapsed_s\": "), std::string::npos);
    EXPECT_GT(sweep.at(0).result.elapsed_s, 0.0);
}

/// Captured event stream of one sweep: the lines and the per-line types.
struct CapturedEvents {
    std::vector<std::string> lines;
    std::size_t points = 0;
};

CapturedEvents run_with_events(std::size_t jobs, bool timing) {
    CapturedEvents captured;
    RunOptions options;
    options.jobs = jobs;
    options.events.timing = timing;
    options.events.sink = [&](const std::string& line) {
        captured.lines.push_back(line);
    };
    const ResultSet results =
        run(bench::rpc_markov_experiment({0.0, 2.0, 5.0, 10.0, 25.0}, true), options);
    captured.points = results.size();
    return captured;
}

TEST(Events, StreamHasTheDocumentedShapeAndMonotoneProgress) {
    const CapturedEvents captured = run_with_events(4, true);
    ASSERT_FALSE(captured.lines.empty());
    EXPECT_NE(captured.lines.front().find("\"type\":\"sweep_started\""),
              std::string::npos);
    EXPECT_NE(captured.lines.back().find("\"type\":\"sweep_finished\""),
              std::string::npos);
    // started + N*(point_started, point_finished, sweep_progress) + finished.
    EXPECT_EQ(captured.lines.size(), 2 + 3 * captured.points);
    std::size_t last_completed = 0;
    std::size_t progress_lines = 0;
    for (const std::string& line : captured.lines) {
        if (line.find("\"type\":\"sweep_progress\"") == std::string::npos) continue;
        ++progress_lines;
        const std::size_t at = line.find("\"completed\":");
        ASSERT_NE(at, std::string::npos) << line;
        const std::size_t completed =
            static_cast<std::size_t>(std::atol(line.c_str() + at + 12));
        EXPECT_GT(completed, last_completed) << line;
        last_completed = completed;
        EXPECT_NE(line.find("\"total\":" + std::to_string(captured.points)),
                  std::string::npos);
    }
    EXPECT_EQ(progress_lines, captured.points);
    EXPECT_EQ(last_completed, captured.points);
    // The final event reports every point completed.
    EXPECT_NE(captured.lines.back().find(
                  "\"completed\":" + std::to_string(captured.points) +
                  ",\"total\":" + std::to_string(captured.points)),
              std::string::npos);
}

TEST(Events, StreamBitIdenticalAcrossJobCountsWithoutTiming) {
    const CapturedEvents serial = run_with_events(1, false);
    const CapturedEvents parallel = run_with_events(8, false);
    EXPECT_EQ(serial.lines, parallel.lines);
}

TEST(Events, TimingFieldsAppearOnlyInTimingMode) {
    const CapturedEvents timed = run_with_events(2, true);
    bool saw_eta = false;
    for (const std::string& line : timed.lines) {
        if (line.find("\"eta_s\":") != std::string::npos) saw_eta = true;
    }
    EXPECT_TRUE(saw_eta);
    for (const std::string& line : run_with_events(2, false).lines) {
        EXPECT_EQ(line.find("\"elapsed_s\":"), std::string::npos) << line;
        EXPECT_EQ(line.find("\"eta_s\":"), std::string::npos) << line;
    }
}

TEST(Events, EnvParsingHonoursDisableAndTimingToggle) {
    unsetenv("DPMA_EVENTS");
    EXPECT_FALSE(static_cast<bool>(events_from_env().sink));
    setenv("DPMA_EVENTS", "0", 1);
    EXPECT_FALSE(static_cast<bool>(events_from_env().sink));
    setenv("DPMA_EVENTS", "stderr", 1);
    setenv("DPMA_EVENTS_TIMING", "0", 1);
    const EventOptions options = events_from_env();
    EXPECT_TRUE(static_cast<bool>(options.sink));
    EXPECT_FALSE(options.timing);
    unsetenv("DPMA_EVENTS");
    unsetenv("DPMA_EVENTS_TIMING");
}

}  // namespace
}  // namespace dpma::exp
