#include <gtest/gtest.h>

#include "bisim/hml.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "lts/ops.hpp"
#include "models/rpc.hpp"
#include "noninterference/noninterference.hpp"

namespace dpma::models::rpc {
namespace {

struct Solved {
    double throughput;
    double waiting;
    double energy;
};

Solved solve(const Config& config) {
    const adl::ComposedModel model = compose(config);
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    const auto ms = measures();
    return Solved{
        ctmc::evaluate_measure(markov, model, pi, ms[kThroughput]),
        ctmc::evaluate_measure(markov, model, pi, ms[kWaitingProb]),
        ctmc::evaluate_measure(markov, model, pi, ms[kEnergyRate]),
    };
}

TEST(RpcStructure, SimplifiedArchitectureValidates) {
    EXPECT_NO_THROW(adl::validate(build(simplified_functional())));
}

TEST(RpcStructure, RevisedArchitectureValidates) {
    EXPECT_NO_THROW(adl::validate(build(revised_functional())));
}

TEST(RpcStructure, SimplifiedFunctionalModelHasDeadlocks) {
    // The defect of Sect. 3.1: the DPM can kill an in-service request and
    // the blocking client waits forever.  The deadlock is visible already
    // in the raw state graph.
    const adl::ComposedModel model = compose(simplified_functional());
    EXPECT_FALSE(lts::deadlock_states(model.graph).empty());
}

TEST(RpcStructure, RevisedFunctionalModelIsDeadlockFree) {
    const adl::ComposedModel model = compose(revised_functional());
    EXPECT_TRUE(lts::deadlock_states(model.graph).empty());
}

TEST(RpcNoninterference, SimplifiedSystemFails) {
    const adl::ComposedModel model = compose(simplified_functional());
    const auto result = noninterference::check_dpm_transparency(
        model, high_action_labels(), "C");
    EXPECT_FALSE(result.noninterfering);
    ASSERT_NE(result.formula, nullptr);
    // The paper's diagnostic: a weak send after which no result can ever be
    // received.  Check the formula mentions both synchronisations.
    const std::string text = bisim::to_two_towers(result.formula);
    EXPECT_NE(text.find("C.send_rpc_packet#RCS.get_packet"), std::string::npos);
    EXPECT_NE(text.find("RSC.deliver_packet#C.receive_result_packet"),
              std::string::npos);
    EXPECT_NE(text.find("NOT("), std::string::npos);
}

TEST(RpcNoninterference, RevisedSystemPasses) {
    const adl::ComposedModel model = compose(revised_functional());
    const auto result = noninterference::check_dpm_transparency(
        model, high_action_labels(), "C");
    EXPECT_TRUE(result.noninterfering);
}

TEST(RpcNoninterference, RevisedWithTrivialDpmStillPasses) {
    // The trivial DPM can only fire when the server listens (idle states),
    // so the revised server remains transparent even under it.
    Config config = revised_functional();
    config.policy = DpmPolicy::Trivial;
    const adl::ComposedModel model = compose(config);
    const auto result = noninterference::check_dpm_transparency(
        model, high_action_labels(), "C");
    EXPECT_TRUE(result.noninterfering);
}

TEST(RpcMarkov, ChainIsModestAndSolvable) {
    const adl::ComposedModel model = compose(markovian(5.0, true));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    EXPECT_GT(markov.chain.num_states(), 10u);
    EXPECT_LT(markov.chain.num_states(), 500u);
    const auto pi = ctmc::steady_state(markov.chain);
    double total = 0.0;
    for (double p : pi) total += p;
    EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(RpcMarkov, ThroughputMatchesLittleLawBallpark) {
    // Without DPM the request cycle is roughly send + 2 propagation hops +
    // service + processing ~ 11.5 ms, so throughput ~ 0.087/ms.
    const Solved s = solve(markovian(10.0, false));
    EXPECT_GT(s.throughput, 0.07);
    EXPECT_LT(s.throughput, 0.10);
}

TEST(RpcMarkov, DpmNeverCounterproductiveInEnergy) {
    // Sect. 4.1: "the DPM is never counterproductive in terms of energy".
    const Solved no_dpm = solve(markovian(10.0, false));
    for (const double timeout : {0.0, 2.0, 5.0, 10.0, 25.0}) {
        const Solved with = solve(markovian(timeout, true));
        EXPECT_LE(with.energy / with.throughput,
                  no_dpm.energy / no_dpm.throughput + 1e-9)
            << "timeout " << timeout;
    }
}

TEST(RpcMarkov, EnergySavingsArePaidInPerformance) {
    // Sect. 4.1: energy savings always cost throughput and waiting time.
    const Solved no_dpm = solve(markovian(10.0, false));
    const Solved with = solve(markovian(2.0, true));
    EXPECT_LT(with.throughput, no_dpm.throughput);
    EXPECT_GT(with.waiting / with.throughput, no_dpm.waiting / no_dpm.throughput);
}

TEST(RpcMarkov, ShorterTimeoutMeansLargerImpact) {
    // Monotone trend over the sweep: energy per request decreases as the
    // shutdown timeout shrinks, throughput decreases as well.
    const Solved t2 = solve(markovian(2.0, true));
    const Solved t10 = solve(markovian(10.0, true));
    const Solved t25 = solve(markovian(25.0, true));
    EXPECT_LT(t2.energy / t2.throughput, t10.energy / t10.throughput);
    EXPECT_LT(t10.energy / t10.throughput, t25.energy / t25.throughput);
    EXPECT_LT(t2.throughput, t10.throughput);
    EXPECT_LT(t10.throughput, t25.throughput);
}

TEST(RpcMarkov, NoDpmConfigurationIsTimeoutIndependent) {
    const Solved a = solve(markovian(1.0, false));
    const Solved b = solve(markovian(20.0, false));
    EXPECT_NEAR(a.throughput, b.throughput, 1e-12);
    EXPECT_NEAR(a.energy, b.energy, 1e-12);
}

TEST(RpcMarkov, ImmediateShutdownIsTheExtremeCase) {
    // timeout = 0 (shutdown as soon as idle) gives the lowest energy and
    // the highest waiting time of the sweep.
    const Solved t0 = solve(markovian(0.0, true));
    const Solved t5 = solve(markovian(5.0, true));
    EXPECT_LT(t0.energy / t0.throughput, t5.energy / t5.throughput);
    EXPECT_GT(t0.waiting / t0.throughput, t5.waiting / t5.throughput);
}

TEST(RpcMarkov, ServerStateProbabilitiesSumToOne) {
    const adl::ComposedModel model = compose(markovian(5.0, true));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    double total = 0.0;
    for (const char* state :
         {"Idle_Server", "Busy_Server", "Responding_Server", "Sleeping_Server",
          "Awaking_Server"}) {
        total += ctmc::state_probability(markov, model, pi,
                                         adl::InStatePredicate{"S", state});
    }
    EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(RpcMarkov, SleepFractionGrowsWithShorterTimeout) {
    const adl::ComposedModel m2 = compose(markovian(2.0, true));
    const ctmc::MarkovModel k2 = ctmc::build_markov(m2);
    const auto pi2 = ctmc::steady_state(k2.chain);
    const double sleep2 = ctmc::state_probability(
        k2, m2, pi2, adl::InStatePredicate{"S", "Sleeping_Server"});

    const adl::ComposedModel m20 = compose(markovian(20.0, true));
    const ctmc::MarkovModel k20 = ctmc::build_markov(m20);
    const auto pi20 = ctmc::steady_state(k20.chain);
    const double sleep20 = ctmc::state_probability(
        k20, m20, pi20, adl::InStatePredicate{"S", "Sleeping_Server"});

    EXPECT_GT(sleep2, sleep20);
    EXPECT_GT(sleep2, 0.0);
}

TEST(RpcGeneral, BuildsWithGeneralRates) {
    const adl::ComposedModel model = compose(general(5.0, true));
    bool has_general = false;
    for (lts::StateId s = 0; s < model.graph.num_states(); ++s) {
        for (const lts::Transition& t : model.graph.out(s)) {
            if (lts::is_general(t.rate)) has_general = true;
            EXPECT_FALSE(std::holds_alternative<lts::RateUnspecified>(t.rate));
        }
    }
    EXPECT_TRUE(has_general);
}

TEST(RpcConfig, CanonicalConfigsHaveDocumentedShape) {
    EXPECT_TRUE(simplified_functional().simplified);
    EXPECT_EQ(simplified_functional().phase, Phase::Functional);
    EXPECT_FALSE(revised_functional().simplified);
    EXPECT_EQ(markovian(3.0, true).policy, DpmPolicy::IdleTimeout);
    EXPECT_EQ(markovian(3.0, false).policy, DpmPolicy::None);
    EXPECT_EQ(general(3.0, true).phase, Phase::General);
    EXPECT_DOUBLE_EQ(markovian(7.5, true).params.shutdown_timeout, 7.5);
}

}  // namespace
}  // namespace dpma::models::rpc
