#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/harness.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"

namespace dpma::bench {
namespace {

TEST(EffortScale, DefaultsToOneAndParsesTheEnvironment) {
    unsetenv("DPMA_BENCH_SCALE");
    EXPECT_DOUBLE_EQ(effort_scale(), 1.0);
    setenv("DPMA_BENCH_SCALE", "0.25", 1);
    EXPECT_DOUBLE_EQ(effort_scale(), 0.25);
    setenv("DPMA_BENCH_SCALE", "garbage", 1);
    EXPECT_DOUBLE_EQ(effort_scale(), 1.0);
    setenv("DPMA_BENCH_SCALE", "-3", 1);
    EXPECT_DOUBLE_EQ(effort_scale(), 1.0);
    unsetenv("DPMA_BENCH_SCALE");
}

TEST(Harness, RpcMarkovPointMatchesDirectSolve) {
    const RpcPoint point = rpc_markov_point(5.0, true);

    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(5.0, true));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    const auto measures = models::rpc::measures();
    const double tput = ctmc::evaluate_measure(markov, model, pi,
                                               measures[models::rpc::kThroughput]);
    const double energy = ctmc::evaluate_measure(markov, model, pi,
                                                 measures[models::rpc::kEnergyRate]);
    EXPECT_DOUBLE_EQ(point.throughput, tput);
    EXPECT_DOUBLE_EQ(point.energy_per_request, energy / tput);
    EXPECT_EQ(point.throughput_hw, 0.0);  // analytic: no CI
}

TEST(Harness, StreamingMarkovPointDerivesTheFourMetrics) {
    const StreamingPoint point = streaming_markov_point(100.0, true);
    EXPECT_GT(point.energy_per_frame, 0.0);
    EXPECT_GE(point.loss, 0.0);
    EXPECT_LE(point.loss, 1.0);
    EXPECT_NEAR(point.miss + point.quality, 1.0, 1e-9);
}

TEST(Harness, GeneralPointsCarryConfidenceIntervals) {
    unsetenv("DPMA_BENCH_SCALE");
    const RpcPoint point = rpc_general_point(5.0, true, 5, 3000.0, 1);
    EXPECT_GT(point.throughput, 0.0);
    // The rpc general model is mostly deterministic: on short horizons all
    // replications can coincide exactly, making the half-width legitimately
    // zero.  The exponentialised validation point below is the stochastic
    // counterpart with a strictly positive CI.
    EXPECT_GE(point.throughput_hw, 0.0);
    const RpcPoint noisy = rpc_general_exp_point(5.0, true, 5, 3000.0, 1);
    EXPECT_GT(noisy.energy_rate_hw, 0.0);
}

TEST(Harness, ExponentializedValidationPointTracksTheAnalyticValue) {
    unsetenv("DPMA_BENCH_SCALE");
    const RpcPoint sim = rpc_general_exp_point(5.0, true, 10, 8000.0, 2);
    const RpcPoint exact = rpc_markov_point(5.0, true);
    EXPECT_NEAR(sim.energy_rate, exact.energy_rate,
                6 * sim.energy_rate_hw + 0.02 * exact.energy_rate);
}

TEST(Harness, TablePrintsWithoutThrowing) {
    Table table("demo", {"x", "a_rather_long_column_name"});
    table.add_row({1.0, 2.0});
    table.add_row({3.5, -0.25});
    EXPECT_NO_THROW(table.print());
}

}  // namespace
}  // namespace dpma::bench
