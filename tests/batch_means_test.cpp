#include <gtest/gtest.h>

#include <cmath>

#include "adl/compose.hpp"
#include "core/error.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/builder.hpp"
#include "models/rpc.hpp"
#include "sim/batch_means.hpp"

namespace dpma::sim {
namespace {

using models::act;
using models::alt;

adl::ArchiType two_phase_exp(double work_rate, double rest_rate) {
    adl::ArchiType archi;
    archi.name = "TwoPhase";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"Working", {}, {alt({act("finish", lts::RateExp{work_rate})}, "Resting")}},
        adl::BehaviorDef{"Resting", {}, {alt({act("restart", lts::RateExp{rest_rate})}, "Working")}},
    };
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    return archi;
}

std::vector<adl::Measure> two_phase_measures() {
    adl::Measure p_work{"p_working", {adl::state_reward_in("X", "Working", 1.0)}};
    adl::Measure throughput{"throughput", {adl::trans_reward("X", "finish", 1.0)}};
    return {p_work, throughput};
}

TEST(BatchMeans, EstimatesMatchAnalyticValues) {
    const adl::ComposedModel model = adl::compose(two_phase_exp(2.0, 1.0));
    const Simulator simulator(model, two_phase_measures());
    BatchOptions options;
    options.warmup = 50.0;
    options.batch_length = 500.0;
    options.num_batches = 30;
    options.seed = 11;
    const auto estimates = batch_means(simulator, options);
    // p(Working) = (1/2)/(3/2) = 1/3; throughput = 2/3.
    EXPECT_NEAR(estimates[0].mean, 1.0 / 3.0, 5 * estimates[0].half_width + 0.01);
    EXPECT_NEAR(estimates[1].mean, 2.0 / 3.0, 5 * estimates[1].half_width + 0.01);
    EXPECT_GT(estimates[0].half_width, 0.0);
}

TEST(BatchMeans, BatchesPartitionTheHorizonExactly) {
    // Deterministic model: every batch must see identical totals, so the
    // half-width collapses to ~0 and the mean is exact.
    adl::ArchiType archi;
    archi.name = "Det";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"Working", {},
            {alt({act("finish", lts::RateGeneral{Dist::deterministic(2.0)})}, "Resting")}},
        adl::BehaviorDef{"Resting", {},
            {alt({act("restart", lts::RateGeneral{Dist::deterministic(3.0)})}, "Working")}},
    };
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    const adl::ComposedModel model = adl::compose(archi);
    const Simulator simulator(model, two_phase_measures());
    BatchOptions options;
    options.warmup = 0.0;
    options.batch_length = 50.0;  // 10 full work/rest cycles per batch
    options.num_batches = 8;
    options.seed = 1;
    const auto estimates = batch_means(simulator, options);
    EXPECT_NEAR(estimates[0].mean, 0.4, 1e-9);
    EXPECT_NEAR(estimates[0].half_width, 0.0, 1e-9);
    EXPECT_NEAR(estimates[1].mean, 0.2, 1e-9);
}

TEST(BatchMeans, AgreesWithReplicationsOnTheRpcModel) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::general(5.0, true));
    const Simulator simulator(model, models::rpc::measures());

    BatchOptions batch_options;
    batch_options.warmup = 500.0;
    batch_options.batch_length = 2000.0;
    batch_options.num_batches = 20;
    batch_options.seed = 9;
    const auto batched = batch_means(simulator, batch_options);

    SimOptions rep_options;
    rep_options.warmup = 500.0;
    rep_options.horizon = 4000.0;
    rep_options.seed = 10;
    const auto replicated = simulate_replications(simulator, rep_options, 10, 0.90);

    for (std::size_t m = 0; m < replicated.size(); ++m) {
        EXPECT_NEAR(batched[m].mean, replicated[m].mean,
                    5 * (batched[m].half_width + replicated[m].half_width) + 1e-4);
    }
}

TEST(BatchMeans, ReportsLowAutocorrelationForLongBatches) {
    const adl::ComposedModel model = adl::compose(two_phase_exp(2.0, 1.0));
    const Simulator simulator(model, two_phase_measures());
    BatchOptions options;
    options.warmup = 20.0;
    options.batch_length = 800.0;  // >> the model's relaxation time
    options.num_batches = 25;
    options.seed = 3;
    const auto estimates = batch_means(simulator, options);
    EXPECT_LT(std::abs(estimates[0].lag1_autocorrelation), 0.45);
}

TEST(BatchMeans, RejectsDegenerateConfigurations) {
    const adl::ComposedModel model = adl::compose(two_phase_exp(2.0, 1.0));
    const Simulator simulator(model, two_phase_measures());
    BatchOptions options;
    options.batch_length = 0.0;
    EXPECT_THROW((void)batch_means(simulator, options), Error);
    options.batch_length = 10.0;
    options.num_batches = 1;
    EXPECT_THROW((void)batch_means(simulator, options), Error);
}

}  // namespace
}  // namespace dpma::sim
