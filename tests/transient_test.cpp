#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "adl/compose.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "core/error.hpp"
#include "models/rpc.hpp"

namespace dpma::ctmc {
namespace {

Ctmc random_chain(int seed, std::size_t n) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 31337 + 5);
    std::uniform_real_distribution<double> rate(0.2, 3.0);
    Ctmc chain(n);
    for (std::size_t i = 0; i < n; ++i) {
        chain.add_rate(static_cast<TangibleId>(i),
                       static_cast<TangibleId>((i + 1) % n), rate(rng));
        chain.add_rate(static_cast<TangibleId>(i),
                       static_cast<TangibleId>((i + n / 2) % n), rate(rng));
    }
    return chain;
}

class TransientProperties : public ::testing::TestWithParam<int> {};

TEST_P(TransientProperties, DistributionStaysNormalisedOverTime) {
    const Ctmc chain = random_chain(GetParam(), 9);
    for (const double t : {0.0, 0.1, 1.0, 10.0, 50.0}) {
        const auto pi = transient(chain, {{0, 1.0}}, t);
        double total = 0.0;
        for (double p : pi) {
            EXPECT_GE(p, -1e-12);
            total += p;
        }
        EXPECT_NEAR(total, 1.0, 1e-9) << "t=" << t;
    }
}

TEST_P(TransientProperties, ChapmanKolmogorovCompositionHolds) {
    // pi(s+t) computed in one step must equal propagating pi(s) for t more.
    const Ctmc chain = random_chain(GetParam(), 7);
    const double s = 0.8, t = 1.7;
    const auto direct = transient(chain, {{0, 1.0}}, s + t);
    const auto at_s = transient(chain, {{0, 1.0}}, s);
    std::vector<std::pair<TangibleId, double>> intermediate;
    for (TangibleId i = 0; i < chain.num_states(); ++i) {
        if (at_s[i] > 0.0) intermediate.emplace_back(i, at_s[i]);
    }
    const auto composed = transient(chain, intermediate, t);
    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_NEAR(direct[i], composed[i], 1e-8) << "state " << i;
    }
}

TEST_P(TransientProperties, ConvergesToTheSteadyState) {
    const Ctmc chain = random_chain(GetParam(), 8);
    const auto pi_inf = steady_state(chain);
    const auto pi_t = transient(chain, {{0, 1.0}}, 500.0);
    for (std::size_t i = 0; i < pi_inf.size(); ++i) {
        EXPECT_NEAR(pi_t[i], pi_inf[i], 1e-6) << "state " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransientProperties, ::testing::Range(0, 8));

TEST(TransientRpc, SleepProbabilityRampsUpTowardsSteadyState) {
    // From a cold start the rpc server has never slept; P(sleeping at t)
    // ramps up towards its steady-state value (with a tiny damped
    // overshoot near convergence, so monotonicity is asserted only up to a
    // small slack).
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(5.0, true));
    const MarkovModel markov = build_markov(model);
    double previous = -1.0;
    double last = 0.0;
    for (const double t : {0.5, 2.0, 8.0, 32.0, 128.0}) {
        const auto pi = transient(markov.chain, markov.initial_distribution, t);
        const double sleeping = state_probability(
            markov, model, pi, adl::InStatePredicate{"S", "Sleeping_Server"});
        EXPECT_GE(sleeping, previous - 1e-3) << "t=" << t;
        previous = sleeping;
        last = sleeping;
    }
    const auto pi_inf = steady_state(markov.chain);
    const double sleeping_inf = state_probability(
        markov, model, pi_inf, adl::InStatePredicate{"S", "Sleeping_Server"});
    EXPECT_NEAR(last, sleeping_inf, 1e-3);
}

TEST(TransientRpc, InitialDistributionIsRespected) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(5.0, true));
    const MarkovModel markov = build_markov(model);
    const auto pi0 = transient(markov.chain, markov.initial_distribution, 0.0);
    double mass_on_initial = 0.0;
    for (const auto& [state, p] : markov.initial_distribution) {
        mass_on_initial += pi0[state];
        EXPECT_NEAR(pi0[state], p, 1e-12);
    }
    EXPECT_NEAR(mass_on_initial, 1.0, 1e-12);
}


TEST(TransientEdges, TimeZeroNormalisesTheInitialDistribution) {
    // t = 0 must return the initial distribution itself — normalised, since
    // callers may pass unnormalised weights.
    const Ctmc chain = random_chain(1, 5);
    const auto pi = transient(chain, {{0, 2.0}, {3, 2.0}}, 0.0);
    EXPECT_NEAR(pi[0], 0.5, 1e-12);
    EXPECT_NEAR(pi[3], 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(pi[1], 0.0);
    EXPECT_DOUBLE_EQ(pi[2], 0.0);
    EXPECT_DOUBLE_EQ(pi[4], 0.0);
}

TEST(TransientEdges, AbsorbingOnlyChainIsAFixedPoint) {
    // A chain with no transitions at all (every state absorbing) must leave
    // the distribution untouched for any horizon — the uniformisation rate
    // is floored, not divided by zero.
    const Ctmc chain(3);
    for (const double t : {0.0, 1.0, 1e6}) {
        const auto pi = transient(chain, {{1, 1.0}}, t);
        EXPECT_NEAR(pi[0], 0.0, 1e-12) << "t=" << t;
        EXPECT_NEAR(pi[1], 1.0, 1e-12) << "t=" << t;
        EXPECT_NEAR(pi[2], 0.0, 1e-12) << "t=" << t;
    }
}

TEST(TransientEdges, AbsorptionMatchesTheExponentialClosedForm) {
    const double a = 0.6;
    Ctmc chain(2);
    chain.add_rate(0, 1, a);  // state 1 is absorbing
    for (const double t : {0.1, 0.5, 3.0, 50.0}) {
        const auto pi = transient(chain, {{0, 1.0}}, t);
        EXPECT_NEAR(pi[1], 1.0 - std::exp(-a * t), 1e-10) << "t=" << t;
        EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-10) << "t=" << t;
    }
}

TEST(TransientEdges, VeryLargeUniformisationHorizonStaysNormalised) {
    // q*t ~ 1e5: the Poisson weights are evaluated in log space, so the
    // early terms underflow to exactly zero instead of poisoning the sum;
    // the result must still be a distribution and must have converged to
    // the steady state.
    const Ctmc chain = random_chain(2, 6);
    const auto pi_t = transient(chain, {{0, 1.0}}, 20000.0);
    double total = 0.0;
    for (const double p : pi_t) {
        EXPECT_GE(p, -1e-12);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    const auto pi_inf = steady_state(chain);
    for (std::size_t i = 0; i < pi_inf.size(); ++i) {
        EXPECT_NEAR(pi_t[i], pi_inf[i], 1e-8) << "state " << i;
    }
}

TEST(AccumulatedReward, ConstantRewardIntegratesToRateTimesTime) {
    const Ctmc chain = random_chain(3, 6);
    const std::vector<double> rewards(6, 2.5);
    const double value = accumulated_reward(chain, {{0, 1.0}}, rewards, 4.0);
    EXPECT_NEAR(value, 2.5 * 4.0, 1e-8);
}

TEST(AccumulatedReward, TwoStateClosedForm) {
    // 0 -(a)-> 1 absorbing-ish? use 0 <-> 1 and integrate P(in 0).
    // P(X_s = 0 | X_0 = 0) = mu/(a+mu) + a/(a+mu) e^{-(a+mu)s}
    const double a = 1.2, mu = 0.7, t = 2.3;
    Ctmc chain(2);
    chain.add_rate(0, 1, a);
    chain.add_rate(1, 0, mu);
    const std::vector<double> rewards{1.0, 0.0};  // reward = indicator of 0
    const double value = accumulated_reward(chain, {{0, 1.0}}, rewards, t);
    const double s = a + mu;
    const double expected = mu / s * t + a / (s * s) * (1.0 - std::exp(-s * t));
    EXPECT_NEAR(value, expected, 1e-8);
}

TEST(AccumulatedReward, GrowsLinearlyOnceStationary) {
    const Ctmc chain = random_chain(5, 8);
    std::vector<double> rewards(8, 0.0);
    rewards[2] = 3.0;
    rewards[5] = 1.0;
    const auto pi = steady_state(chain);
    const double rate = 3.0 * pi[2] + 1.0 * pi[5];
    const double at_100 = accumulated_reward(chain, {{0, 1.0}}, rewards, 100.0);
    const double at_200 = accumulated_reward(chain, {{0, 1.0}}, rewards, 200.0);
    EXPECT_NEAR(at_200 - at_100, 100.0 * rate, 0.01 * 100.0 * rate + 1e-6);
}

TEST(AccumulatedReward, ColdStartEnergyOfTheRpcServer) {
    // Energy spent in the first 50 ms from a cold start exceeds the
    // steady-state rate times 50 ms (the server has not started sleeping
    // yet, so it burns idle/busy power the whole time).
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(5.0, true));
    const MarkovModel markov = build_markov(model);
    std::vector<double> rewards(markov.chain.num_states(), 0.0);
    const auto add_mask = [&](const char* prefix, double watts) {
        const auto mask =
            adl::state_mask(model, adl::InStatePredicate{"S", prefix});
        for (TangibleId t = 0; t < markov.chain.num_states(); ++t) {
            if (mask[markov.orig_of[t]]) rewards[t] += watts;
        }
    };
    add_mask("Idle_Server", 2.0);
    add_mask("Busy_Server", 3.0);
    add_mask("Responding_Server", 3.0);
    add_mask("Awaking_Server", 2.0);

    const double cold = accumulated_reward(markov.chain,
                                           markov.initial_distribution, rewards, 50.0);
    const auto pi = steady_state(markov.chain);
    double stationary_rate = 0.0;
    for (TangibleId t = 0; t < markov.chain.num_states(); ++t) {
        stationary_rate += pi[t] * rewards[t];
    }
    EXPECT_GT(cold, stationary_rate * 50.0);
    EXPECT_LT(cold, 3.0 * 50.0);  // bounded by the maximum power
}

TEST(AccumulatedReward, TimeZeroAccruesNothing) {
    const Ctmc chain = random_chain(4, 5);
    const std::vector<double> rewards(5, 3.0);
    EXPECT_DOUBLE_EQ(accumulated_reward(chain, {{0, 1.0}}, rewards, 0.0), 0.0);
}

TEST(AccumulatedReward, AbsorbingChainAccruesItsStateRewardLinearly) {
    const Ctmc chain(2);  // no transitions: both states absorbing
    const std::vector<double> rewards{4.0, 7.0};
    // Tolerance: with no exits the uniformisation rate is floored, so the
    // series truncates after a couple of terms — exact up to that truncation.
    EXPECT_NEAR(accumulated_reward(chain, {{1, 1.0}}, rewards, 3.0), 21.0, 1e-5);
    EXPECT_NEAR(accumulated_reward(chain, {{0, 1.0}, {1, 1.0}}, rewards, 2.0),
                11.0, 1e-5);  // unnormalised initial mass is normalised first
}

TEST(AccumulatedReward, RejectsMismatchedRewardVector) {
    Ctmc chain(2);
    chain.add_rate(0, 1, 1.0);
    chain.add_rate(1, 0, 1.0);
    EXPECT_THROW((void)accumulated_reward(chain, {{0, 1.0}}, {1.0}, 1.0), Error);
}

}  // namespace
}  // namespace dpma::ctmc
