#include <gtest/gtest.h>

#include <string>

#include "core/error.hpp"
#include "exp/regress.hpp"
#include "obs/json_parse.hpp"

namespace dpma::exp {
namespace {

/// Minimal run record with one fig3-shaped series; per-point elapsed times
/// come from \p scale so a "slowed" record is one multiplication away.
std::string record_json(double scale, const char* experiment = "fig3_rpc_markov_dpm") {
    std::string series;
    const double timeouts[] = {0.0, 5.0, 10.0, 25.0};
    for (int i = 0; i < 4; ++i) {
        if (i > 0) series += ",\n";
        series += R"({"params": {"timeout_ms": )" + std::to_string(timeouts[i]) +
                  R"(}, "values": {"throughput": 0.25}, "half_widths": )" +
                  R"({"throughput": 0.0}, "elapsed_s": )" +
                  std::to_string((0.01 + 0.001 * i) * scale) + "}";
    }
    return std::string(R"({"schema": "dpma-run-report/1", "tool": "test", )" +
                       std::string(R"("wall_s": )") + std::to_string(0.5 * scale) +
                       R"(, "series": [{"experiment": ")" + experiment +
                       R"(", "params": ["timeout_ms"], "measures": ["throughput"], )" +
                       R"("points": [)" + series + "]}]}");
}

TEST(Regress, IdenticalRecordsPassWithUnitRatio) {
    const obs::Json record = obs::json_parse(record_json(1.0));
    const RegressReport report = compare_reports(record, record);
    ASSERT_EQ(report.series.size(), 1u);
    EXPECT_FALSE(report.regression);
    EXPECT_EQ(report.series[0].verdict, "ok");
    EXPECT_EQ(report.series[0].paired, 4u);
    EXPECT_DOUBLE_EQ(report.series[0].ratio, 1.0);
    EXPECT_DOUBLE_EQ(report.series[0].ci_lo, 1.0);
    EXPECT_DOUBLE_EQ(report.series[0].ci_hi, 1.0);
}

TEST(Regress, UniformSlowdownPastThresholdRegresses) {
    const obs::Json older = obs::json_parse(record_json(1.0));
    const obs::Json newer = obs::json_parse(record_json(2.0));
    const RegressReport report = compare_reports(older, newer);
    ASSERT_EQ(report.series.size(), 1u);
    EXPECT_TRUE(report.regression);
    EXPECT_EQ(report.series[0].verdict, "REGRESSION");
    EXPECT_NEAR(report.series[0].ratio, 2.0, 1e-9);
    EXPECT_GE(report.series[0].ci_lo, 1.20);
    EXPECT_NE(report.table().find("REGRESSION"), std::string::npos);
}

TEST(Regress, UniformSpeedupReportsFaster) {
    const obs::Json older = obs::json_parse(record_json(2.0));
    const obs::Json newer = obs::json_parse(record_json(1.0));
    const RegressReport report = compare_reports(older, newer);
    EXPECT_FALSE(report.regression);
    EXPECT_EQ(report.series[0].verdict, "faster");
}

TEST(Regress, ThresholdIsRespected) {
    const obs::Json older = obs::json_parse(record_json(1.0));
    const obs::Json newer = obs::json_parse(record_json(2.0));
    RegressOptions lax;
    lax.threshold = 3.0;  // a 2x slowdown is within budget
    EXPECT_FALSE(compare_reports(older, newer, lax).regression);
}

TEST(Regress, VerdictIsDeterministicAcrossRuns) {
    const obs::Json older = obs::json_parse(record_json(1.0));
    const obs::Json newer = obs::json_parse(record_json(1.35));
    const RegressReport a = compare_reports(older, newer);
    const RegressReport b = compare_reports(older, newer);
    EXPECT_EQ(a.series[0].ci_lo, b.series[0].ci_lo);
    EXPECT_EQ(a.series[0].ci_hi, b.series[0].ci_hi);
    EXPECT_EQ(a.series[0].verdict, b.series[0].verdict);
}

TEST(Regress, UnpairedSeriesBecomeNotesNotVerdicts) {
    const obs::Json older = obs::json_parse(record_json(1.0, "old_only"));
    const obs::Json newer = obs::json_parse(record_json(1.0, "new_only"));
    const RegressReport report = compare_reports(older, newer);
    EXPECT_TRUE(report.series.empty());
    EXPECT_FALSE(report.regression);
    bool saw_old = false, saw_new = false;
    for (const std::string& note : report.notes) {
        if (note.find("'old_only' only in the old record") != std::string::npos) {
            saw_old = true;
        }
        if (note.find("'new_only' only in the new record") != std::string::npos) {
            saw_new = true;
        }
    }
    EXPECT_TRUE(saw_old);
    EXPECT_TRUE(saw_new);
}

TEST(Regress, RecordWithoutTimingIsIncomparable) {
    const std::string no_timing =
        R"({"schema": "dpma-run-report/1", "series": [{"experiment": "s", )"
        R"("points": [{"params": {"x": 1}, "values": {"m": 2.0}, )"
        R"("half_widths": {"m": 0.0}}]}]})";
    const obs::Json older = obs::json_parse(no_timing);
    const obs::Json newer = obs::json_parse(no_timing);
    const RegressReport report = compare_reports(older, newer);
    ASSERT_EQ(report.series.size(), 1u);
    EXPECT_EQ(report.series[0].verdict, "incomparable");
    EXPECT_FALSE(report.series[0].comparable);
    EXPECT_FALSE(report.regression);
}

TEST(Regress, ValueDriftBeyondHalfWidthsIsNoted) {
    const std::string base =
        R"({"schema": "dpma-run-report/1", "series": [{"experiment": "s", )"
        R"("points": [{"params": {"x": 1}, "values": {"m": VALUE}, )"
        R"("half_widths": {"m": 0.01}, "elapsed_s": 0.5}]}]})";
    auto with_value = [&](const char* value) {
        std::string text = base;
        text.replace(text.find("VALUE"), 5, value);
        return obs::json_parse(text);
    };
    const RegressReport drifted =
        compare_reports(with_value("2.0"), with_value("3.0"));
    bool noted = false;
    for (const std::string& note : drifted.notes) {
        if (note.find("value drift") != std::string::npos) noted = true;
    }
    EXPECT_TRUE(noted);
    EXPECT_FALSE(drifted.regression);  // drift never sets the exit code
    // Within the combined half-widths: no note.
    const RegressReport steady =
        compare_reports(with_value("2.0"), with_value("2.015"));
    for (const std::string& note : steady.notes) {
        EXPECT_EQ(note.find("value drift"), std::string::npos) << note;
    }
}

TEST(Regress, PointPairingIgnoresParamKeyOrder) {
    const char* ab =
        R"({"schema": "dpma-run-report/1", "series": [{"experiment": "s", )"
        R"("points": [{"params": {"a": 1, "b": 2}, "values": {}, )"
        R"("half_widths": {}, "elapsed_s": 0.5}]}]})";
    const char* ba =
        R"({"schema": "dpma-run-report/1", "series": [{"experiment": "s", )"
        R"("points": [{"params": {"b": 2, "a": 1}, "values": {}, )"
        R"("half_widths": {}, "elapsed_s": 0.5}]}]})";
    const RegressReport report =
        compare_reports(obs::json_parse(ab), obs::json_parse(ba));
    ASSERT_EQ(report.series.size(), 1u);
    EXPECT_EQ(report.series[0].paired, 1u);
    EXPECT_EQ(report.series[0].only_old, 0u);
    EXPECT_EQ(report.series[0].only_new, 0u);
}

TEST(Regress, RejectsDocumentsThatAreNotRunRecords) {
    const obs::Json record = obs::json_parse(record_json(1.0));
    const obs::Json other = obs::json_parse(R"({"schema": "something-else/9"})");
    const obs::Json plain = obs::json_parse(R"({"values": [1, 2, 3]})");
    EXPECT_THROW((void)compare_reports(other, record), Error);
    EXPECT_THROW((void)compare_reports(record, plain), Error);
}

TEST(Regress, OptionsValidateRejectsNonsense) {
    RegressOptions options;
    EXPECT_NO_THROW(options.validate());
    options.threshold = 1.0;
    EXPECT_THROW(options.validate(), Error);
    options.threshold = 1.2;
    options.confidence = 1.0;
    EXPECT_THROW(options.validate(), Error);
    options.confidence = 0.95;
    options.resamples = 0;
    EXPECT_THROW(options.validate(), Error);
}

}  // namespace
}  // namespace dpma::exp
