#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "adl/compose.hpp"
#include "bisim/equivalence.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "lts/ops.hpp"
#include "models/rpc.hpp"
#include "models/streaming.hpp"
#include "noninterference/noninterference.hpp"

namespace dpma {
namespace {

// ---------------------------------------------------------------- solvers

class RandomChainSolvers : public ::testing::TestWithParam<int> {};

ctmc::Ctmc random_irreducible_chain(int seed, std::size_t n) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
    std::uniform_real_distribution<double> rate(0.1, 5.0);
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    ctmc::Ctmc chain(n);
    // A ring guarantees irreducibility; extra random edges add structure.
    for (std::size_t i = 0; i < n; ++i) {
        chain.add_rate(static_cast<ctmc::TangibleId>(i),
                       static_cast<ctmc::TangibleId>((i + 1) % n), rate(rng));
    }
    for (std::size_t e = 0; e < 3 * n; ++e) {
        const std::size_t from = pick(rng);
        const std::size_t to = pick(rng);
        if (from != to) {
            chain.add_rate(static_cast<ctmc::TangibleId>(from),
                           static_cast<ctmc::TangibleId>(to), rate(rng));
        }
    }
    return chain;
}

TEST_P(RandomChainSolvers, AllThreeSolversAgree) {
    const ctmc::Ctmc chain = random_irreducible_chain(GetParam(), 20 + GetParam() % 17);
    ASSERT_TRUE(ctmc::is_irreducible(chain));
    const auto gth = ctmc::steady_state_gth(chain);
    const auto gs = ctmc::steady_state_gauss_seidel(chain);
    const auto power =
        ctmc::steady_state_power(chain, ctmc::SolveOptions{1e-14, 2'000'000, 1500});
    for (std::size_t i = 0; i < gth.size(); ++i) {
        EXPECT_NEAR(gth[i], gs[i], 1e-8) << "state " << i;
        EXPECT_NEAR(gth[i], power[i], 1e-7) << "state " << i;
    }
}

TEST_P(RandomChainSolvers, SteadyStateSatisfiesBalanceEquations) {
    const ctmc::Ctmc chain = random_irreducible_chain(GetParam(), 25);
    const auto pi = ctmc::steady_state(chain);
    double total = 0.0;
    std::vector<double> inflow(chain.num_states(), 0.0);
    for (ctmc::TangibleId s = 0; s < chain.num_states(); ++s) {
        total += pi[s];
        for (const ctmc::RateEntry& e : chain.row(s)) {
            inflow[e.target] += pi[s] * e.rate;
        }
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    for (ctmc::TangibleId s = 0; s < chain.num_states(); ++s) {
        EXPECT_NEAR(inflow[s], pi[s] * chain.exit_rate(s), 1e-9) << "state " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainSolvers, ::testing::Range(0, 12));

// ------------------------------------------------------------ weak bisim

class RandomLtsProperties : public ::testing::TestWithParam<int> {};

lts::Lts random_lts(int seed, int n) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 104729 + 7);
    std::uniform_int_distribution<int> pick_state(0, n - 1);
    std::uniform_int_distribution<int> pick_action(0, 3);
    const char* names[] = {"tau", "a", "b", "c"};
    lts::Lts m;
    for (int i = 0; i < n; ++i) m.add_state();
    for (int e = 0; e < 3 * n; ++e) {
        m.add_transition(static_cast<lts::StateId>(pick_state(rng)),
                         m.action(names[pick_action(rng)]),
                         static_cast<lts::StateId>(pick_state(rng)));
    }
    m.set_initial(0);
    return m;
}

TEST_P(RandomLtsProperties, TauSccCollapsePreservesWeakBisimilarity) {
    const lts::Lts m = random_lts(GetParam(), 8 + GetParam() % 9);
    const lts::TauCollapseResult collapsed = lts::collapse_tau_sccs(m);
    EXPECT_TRUE(bisim::weakly_bisimilar(m, collapsed.collapsed).equivalent)
        << "seed " << GetParam();
}

TEST_P(RandomLtsProperties, SaturationPreservesWeakBisimilarity) {
    // Adding weakly derivable transitions must not change the weak
    // equivalence class.
    const lts::Lts m = random_lts(GetParam(), 7 + GetParam() % 6);
    const lts::Lts saturated = lts::saturate(m);
    EXPECT_TRUE(bisim::weakly_bisimilar(m, saturated).equivalent)
        << "seed " << GetParam();
}

TEST_P(RandomLtsProperties, HidingEverythingYieldsTheTrivialProcess) {
    lts::Lts m = random_lts(GetParam(), 6 + GetParam() % 7);
    lts::ActionSet all;
    for (Symbol a = 0; a < m.actions()->size(); ++a) all.insert(a);
    const lts::Lts hidden = lts::hide(m, all);
    lts::Lts trivial;
    trivial.set_initial(trivial.add_state());
    EXPECT_TRUE(bisim::weakly_bisimilar(hidden, trivial).equivalent)
        << "seed " << GetParam();
}

TEST_P(RandomLtsProperties, WeakBisimilarityIsReflexiveUnderRenumbering) {
    const lts::Lts m = random_lts(GetParam(), 10);
    const lts::Lts pruned = lts::reachable_part(m);
    // The reachable part has the same behaviour from the initial state.
    EXPECT_TRUE(bisim::weakly_bisimilar(m, pruned).equivalent);
    EXPECT_TRUE(bisim::strongly_bisimilar(m, pruned).equivalent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLtsProperties, ::testing::Range(0, 15));

// ----------------------------------------------------- model-level sweeps

class RpcTimeoutSweep : public ::testing::TestWithParam<double> {};

TEST_P(RpcTimeoutSweep, DpmSavesEnergyAndNeverGainsThroughput) {
    const double timeout = GetParam();
    const auto solve = [](const models::rpc::Config& config) {
        const adl::ComposedModel model = models::rpc::compose(config);
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto pi = ctmc::steady_state(markov.chain);
        const auto ms = models::rpc::measures();
        const double tput = ctmc::evaluate_measure(markov, model, pi,
                                                   ms[models::rpc::kThroughput]);
        const double energy = ctmc::evaluate_measure(markov, model, pi,
                                                     ms[models::rpc::kEnergyRate]);
        return std::make_pair(tput, energy / tput);
    };
    const auto [tput_dpm, epr_dpm] = solve(models::rpc::markovian(timeout, true));
    const auto [tput_base, epr_base] = solve(models::rpc::markovian(timeout, false));
    EXPECT_LT(epr_dpm, epr_base) << "timeout " << timeout;
    EXPECT_LT(tput_dpm, tput_base) << "timeout " << timeout;
}

TEST_P(RpcTimeoutSweep, ChainIsIrreducibleAfterTransientRemoval) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(GetParam(), true));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto bottoms = ctmc::bottom_sccs(markov.chain);
    EXPECT_EQ(bottoms.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Timeouts, RpcTimeoutSweep,
                         ::testing::Values(0.5, 1.0, 3.0, 7.0, 12.0, 18.0, 25.0));

class StreamingCapacitySweep : public ::testing::TestWithParam<long> {};

TEST_P(StreamingCapacitySweep, NoninterferenceHoldsAtEveryCapacity) {
    const adl::ComposedModel model =
        models::streaming::compose(models::streaming::functional(GetParam()));
    const auto verdict = noninterference::check_dpm_transparency(
        model, models::streaming::high_action_labels(), "C");
    EXPECT_TRUE(verdict.noninterfering) << "capacity " << GetParam();
}

TEST_P(StreamingCapacitySweep, ModelsAreDeadlockFreeAtEveryCapacity) {
    const adl::ComposedModel functional =
        models::streaming::compose(models::streaming::functional(GetParam()));
    EXPECT_TRUE(lts::deadlock_states(functional.graph).empty());

    models::streaming::Config markov = models::streaming::markovian(100.0, true);
    markov.params.ap_capacity = GetParam();
    markov.params.b_capacity = GetParam();
    const adl::ComposedModel timed = models::streaming::compose(markov);
    EXPECT_TRUE(lts::deadlock_states(timed.graph).empty());
}

TEST_P(StreamingCapacitySweep, LargerClientBufferNeverHurtsQuality) {
    models::streaming::Config small = models::streaming::markovian(200.0, true);
    small.params.b_capacity = GetParam();
    models::streaming::Config large = small;
    large.params.b_capacity = GetParam() + 2;

    const auto quality = [](const models::streaming::Config& config) {
        const adl::ComposedModel model = models::streaming::compose(config);
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto pi = ctmc::steady_state(markov.chain);
        const auto ms = models::streaming::measures();
        const double hits = ctmc::evaluate_measure(markov, model, pi,
                                                   ms[models::streaming::kHits]);
        const double miss = ctmc::evaluate_measure(markov, model, pi,
                                                   ms[models::streaming::kMiss]);
        return hits / (hits + miss);
    };
    EXPECT_LE(quality(small), quality(large) + 1e-9) << "capacity " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Capacities, StreamingCapacitySweep,
                         ::testing::Values(1L, 2L, 3L, 4L));

// --------------------------------------------- composed-model invariants

TEST(ComposedInvariants, VanishingEliminationConservesProbabilityFlow) {
    // For every tangible state, the outgoing rates of the eliminated chain
    // must sum to the state's total timed rate in the raw graph (probability
    // is only redistributed, never created or destroyed).
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(5.0, true));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    for (ctmc::TangibleId t = 0; t < markov.chain.num_states(); ++t) {
        const lts::StateId s = markov.orig_of[t];
        double raw = 0.0;
        for (const lts::Transition& tr : model.graph.out(s)) {
            if (const auto* e = std::get_if<lts::RateExp>(&tr.rate)) raw += e->rate;
        }
        double eliminated = markov.chain.exit_rate(t);
        // Self-loops created by elimination (tangible -> vanishing -> same
        // tangible) are dropped by the Ctmc; account for them separately.
        double self_loop = raw;
        for (const ctmc::RateEntry& e : markov.chain.row(t)) self_loop -= e.rate;
        EXPECT_GE(self_loop, -1e-9);
        EXPECT_LE(eliminated, raw + 1e-9);
    }
}

TEST(ComposedInvariants, EveryGlobalActionInvolvesDeclaredInstances) {
    const adl::ComposedModel model =
        models::streaming::compose(models::streaming::markovian(100.0, true));
    const auto& table = *model.graph.actions();
    for (Symbol a = 1; a < table.size(); ++a) {  // 0 is tau
        const std::string& label = table.name(a);
        if (label.find('.') == std::string::npos) continue;  // bare action names
        const std::string owner = label.substr(0, label.find('.'));
        bool known = false;
        for (const std::string& inst : model.instance_names) {
            if (inst == owner) known = true;
        }
        EXPECT_TRUE(known) << label;
    }
}

}  // namespace
}  // namespace dpma
