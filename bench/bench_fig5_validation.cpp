/// \file bench_fig5_validation.cpp
/// Reproduces Fig. 5: cross-validation of the general model against the
/// Markovian one (Sect. 5.1).  The general rpc model is given exponential
/// distributions consistent with the Markovian rates, simulated over 30
/// independent replications, and its server-energy estimate (with 90%
/// confidence intervals) is compared with the exact CTMC solution for
/// several shutdown timeouts, with and without DPM.
///
/// Expected outcome: good agreement — every analytic value inside (or very
/// near) the simulation confidence interval.

#include <cmath>
#include <cstdio>

#include "bench/harness.hpp"

int main(int argc, char** argv) {
    using namespace dpma::bench;
    const ScopedObservation observation("fig5_validation", argc, argv);
    std::printf("== Fig. 5: validation of the general model (exp) vs Markov ==\n");
    std::printf("(30 replications, 90%% confidence intervals)\n");

    const int reps = 30;
    const double horizon = 20000.0;

    Table table("rpc server energy rate: simulation(exp) vs analytic",
                {"timeout_ms", "sim_dpm", "ci_dpm", "exact_dpm", "sim_nodpm",
                 "ci_nodpm", "exact_nodpm"});
    int inside = 0;
    int total = 0;
    for (const double timeout : {1.0, 5.0, 10.0, 15.0, 20.0, 25.0}) {
        const RpcPoint sim_dpm = rpc_general_exp_point(
            timeout, true, reps, horizon, 500 + static_cast<int>(timeout));
        const RpcPoint exact_dpm = rpc_markov_point(timeout, true);
        const RpcPoint sim_base = rpc_general_exp_point(
            timeout, false, reps, horizon, 900 + static_cast<int>(timeout));
        const RpcPoint exact_base = rpc_markov_point(timeout, false);
        table.add_row({timeout, sim_dpm.energy_rate, sim_dpm.energy_rate_hw,
                       exact_dpm.energy_rate, sim_base.energy_rate,
                       sim_base.energy_rate_hw, exact_base.energy_rate});
        total += 2;
        if (std::abs(sim_dpm.energy_rate - exact_dpm.energy_rate) <=
            2.0 * sim_dpm.energy_rate_hw) {
            ++inside;
        }
        if (std::abs(sim_base.energy_rate - exact_base.energy_rate) <=
            2.0 * sim_base.energy_rate_hw) {
            ++inside;
        }
    }
    table.print();
    std::printf(
        "\nsummary: %d/%d analytic values within twice the 90%% CI half-width "
        "of the simulation estimate — the general model is consistent with "
        "the Markovian one (Sect. 5.1)\n",
        inside, total);
    return 0;
}
