/// \file bench_fig3_rpc_markov.cpp
/// Reproduces the left-hand side of Fig. 3: throughput, waiting time per
/// request and energy per request of the rpc system as functions of the DPM
/// shutdown timeout (0..25 ms), from the exact steady-state solution of the
/// Markovian model (Sect. 4.1).
///
/// Paper shapes to observe:
///  * the shorter the timeout, the larger the DPM impact;
///  * the DPM is never counterproductive in energy;
///  * energy savings are paid in throughput and waiting time, so the DPM is
///    not performance-transparent;
///  * the NO-DPM series is flat.

#include <cstdio>

#include "bench/harness.hpp"

int main() {
    using namespace dpma::bench;
    std::printf("== Fig. 3 (left): rpc Markovian model, DPM vs NO-DPM ==\n");

    const RpcPoint base = rpc_markov_point(10.0, false);

    Table table("rpc / Markov: sweep of the DPM shutdown timeout",
                {"timeout_ms", "tput_dpm", "tput_nodpm", "wait_dpm", "wait_nodpm",
                 "epr_dpm", "epr_nodpm"});
    for (const double timeout :
         {0.0, 1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0, 22.5, 25.0}) {
        const RpcPoint dpm = rpc_markov_point(timeout, true);
        table.add_row({timeout, dpm.throughput, base.throughput,
                       dpm.waiting_per_request, base.waiting_per_request,
                       dpm.energy_per_request, base.energy_per_request});
    }
    table.print();

    const RpcPoint t0 = rpc_markov_point(0.0, true);
    const RpcPoint t25 = rpc_markov_point(25.0, true);
    std::printf(
        "\nsummary: timeout=0 saves %.1f%% energy/request at %.1f%% lower "
        "throughput; timeout=25 saves %.1f%% at %.1f%% lower throughput\n",
        100.0 * (1.0 - t0.energy_per_request / base.energy_per_request),
        100.0 * (1.0 - t0.throughput / base.throughput),
        100.0 * (1.0 - t25.energy_per_request / base.energy_per_request),
        100.0 * (1.0 - t25.throughput / base.throughput));
    return 0;
}
