/// \file bench_fig3_rpc_markov.cpp
/// Reproduces the left-hand side of Fig. 3: throughput, waiting time per
/// request and energy per request of the rpc system as functions of the DPM
/// shutdown timeout (0..25 ms), from the exact steady-state solution of the
/// Markovian model (Sect. 4.1).
///
/// Runs on the experiment engine: the sweep is a declarative grid executed
/// over a thread pool (DPMA_JOBS), and the composed state space is built
/// once and rate-patched per point (see bench::figure_cache()).
///
/// Paper shapes to observe:
///  * the shorter the timeout, the larger the DPM impact;
///  * the DPM is never counterproductive in energy;
///  * energy savings are paid in throughput and waiting time, so the DPM is
///    not performance-transparent;
///  * the NO-DPM series is flat.

#include <chrono>
#include <cstdio>

#include "bench/harness.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
    using namespace dpma::bench;
    namespace exp = dpma::exp;
    ScopedObservation observation("fig3_rpc_markov", argc, argv);
    std::printf("== Fig. 3 (left): rpc Markovian model, DPM vs NO-DPM ==\n");

    const std::vector<double> timeouts = {0.0,  1.0,  2.0,  3.0,  5.0,  7.5, 10.0,
                                          12.5, 15.0, 17.5, 20.0, 22.5, 25.0};

    const auto started = std::chrono::steady_clock::now();
    exp::RunOptions options;  // jobs from DPMA_JOBS / hardware_concurrency
    const exp::ResultSet sweep = exp::run(rpc_markov_experiment(timeouts, true), options);
    const exp::ResultSet no_dpm = exp::run(rpc_markov_experiment({10.0}, false), options);
    observation.record(sweep);
    observation.record(no_dpm);
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - started;

    const RpcPoint base = rpc_point_from(no_dpm.at(0).result.values, {});

    Table table("rpc / Markov: sweep of the DPM shutdown timeout",
                {"timeout_ms", "tput_dpm", "tput_nodpm", "wait_dpm", "wait_nodpm",
                 "epr_dpm", "epr_nodpm"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const RpcPoint dpm = rpc_point_from(sweep.at(i).result.values, {});
        table.add_row({timeouts[i], dpm.throughput, base.throughput,
                       dpm.waiting_per_request, base.waiting_per_request,
                       dpm.energy_per_request, base.energy_per_request});
    }
    table.print();

    const RpcPoint t0 = rpc_point_from(sweep.at(0).result.values, {});
    const RpcPoint t25 = rpc_point_from(sweep.at(sweep.size() - 1).result.values, {});
    std::printf(
        "\nsummary: timeout=0 saves %.1f%% energy/request at %.1f%% lower "
        "throughput; timeout=25 saves %.1f%% at %.1f%% lower throughput\n",
        100.0 * (1.0 - t0.energy_per_request / base.energy_per_request),
        100.0 * (1.0 - t0.throughput / base.throughput),
        100.0 * (1.0 - t25.energy_per_request / base.energy_per_request),
        100.0 * (1.0 - t25.throughput / base.throughput));

    const exp::ModelCache::Stats stats = exp::ModelCache::global_stats();
    std::printf("engine: %zu points, jobs=%zu, cache hits=%llu misses=%llu, %.3fs\n",
                sweep.size() + no_dpm.size(), exp::default_jobs(),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses), elapsed.count());
    return 0;
}
