/// \file bench_ablation_policies.cpp
/// Ablation studies of the design choices Sect. 2.1 calls out (ours, not a
/// paper figure):
///
///  1. DPM policy: the idle-timeout policy (shutdown timer armed when the
///     server reports idle) vs the trivial policy (free-running shutdown
///     generator, as in Sect. 2.3, but attached to the revised server that
///     only listens when idle).
///  2. Client timeout value: the resend timer trades waiting time against
///     useless retransmissions.
///  3. NIC power-state costs: how the wake-up transient power affects the
///     streaming awake-period sweet spot.

#include <cstdio>

#include "bench/harness.hpp"
#include "ctmc/absorption.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;
using namespace dpma::bench;

RpcPoint solve_rpc(const models::rpc::Config& config) {
    const adl::ComposedModel model = models::rpc::compose(config);
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    const auto measures = models::rpc::measures();
    RpcPoint point;
    point.throughput =
        ctmc::evaluate_measure(markov, model, pi, measures[models::rpc::kThroughput]);
    point.energy_rate =
        ctmc::evaluate_measure(markov, model, pi, measures[models::rpc::kEnergyRate]);
    const double waiting =
        ctmc::evaluate_measure(markov, model, pi, measures[models::rpc::kWaitingProb]);
    point.waiting_per_request = waiting / point.throughput;
    point.energy_per_request = point.energy_rate / point.throughput;
    return point;
}

void ablate_policy() {
    std::printf("== Ablation 1: idle-timeout vs trivial DPM policy (rpc) ==\n");

    // Markovian phase: the two policies are *provably identical*.  The
    // trivial DPM's free-running exponential timer and the idle-timeout
    // DPM's restarted one generate the same CTMC transition (the shutdown
    // can only synchronise while the server is idle, and the exponential
    // distribution is memoryless), so the steady-state measures coincide.
    {
        models::rpc::Config idle = models::rpc::markovian(5.0, true);
        models::rpc::Config trivial = idle;
        trivial.policy = models::rpc::DpmPolicy::Trivial;
        const RpcPoint a = solve_rpc(idle);
        const RpcPoint b = solve_rpc(trivial);
        std::printf(
            "Markov check: energy/request idle=%.6f trivial=%.6f (identical by\n"
            "memorylessness — the policy distinction only exists with\n"
            "non-exponential timers, which motivates the general phase)\n",
            a.energy_per_request, b.energy_per_request);
    }

    // The design choice that *does* change the outcome (Sect. 2.1): letting
    // the server accept shutdowns while busy, dropping the request in
    // service.  Exercised by the trivial DPM (the idle-timeout one never
    // commands a busy server).  The revised client's resend timeout keeps
    // the system live — this is the performance-domain echo of the
    // functional defect of Sect. 3.1.
    Table table("shutdown-while-busy (Trivial DPM, Markov)",
                {"period_ms", "epr_idle_only", "epr_busy_too", "tput_idle_only",
                 "tput_busy_too", "wait_busy_too"});
    for (const double period : {1.0, 2.0, 5.0, 10.0, 20.0}) {
        models::rpc::Config idle_only = models::rpc::markovian(period, true);
        idle_only.policy = models::rpc::DpmPolicy::Trivial;
        models::rpc::Config busy_too = idle_only;
        busy_too.shutdown_when_busy = true;
        const RpcPoint a = solve_rpc(idle_only);
        const RpcPoint b = solve_rpc(busy_too);
        table.add_row({period, a.energy_per_request, b.energy_per_request,
                       a.throughput, b.throughput, b.waiting_per_request});
    }
    table.print();
    std::printf(
        "(killing in-service requests saves little extra energy but wastes\n"
        " whole service cycles: throughput drops and waiting grows sharply\n"
        " at aggressive shutdown periods)\n\n");
}

void ablate_client_timeout() {
    std::printf("== Ablation 2: client resend timeout (rpc, Markov, DPM t=5ms) ==\n");
    Table table("client timeout sweep",
                {"timeout_ms", "throughput", "wait_per_req", "epr"});
    for (const double timeout : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        models::rpc::Config config = models::rpc::markovian(5.0, true);
        config.params.client_timeout = timeout;
        const RpcPoint p = solve_rpc(config);
        table.add_row({timeout, p.throughput, p.waiting_per_request,
                       p.energy_per_request});
    }
    table.print();
    std::printf(
        "(too-short client timeouts waste channel capacity on retransmissions;\n"
        " too-long ones inflate recovery time after losses)\n\n");
}

void ablate_wakeup_power() {
    std::printf("== Ablation 3: NIC wake-up transient power (streaming, Markov) ==\n");
    Table table("energy/frame for awake=100ms under different wake-up powers",
                {"p_waking", "epf_dpm", "epf_nodpm", "saving_pct"});
    for (const double power : {1.0, 1.5, 3.0, 6.0, 12.0}) {
        models::streaming::Config with = models::streaming::markovian(100.0, true);
        with.params.power_waking = power;
        models::streaming::Config without = models::streaming::markovian(100.0, false);
        without.params.power_waking = power;

        const auto solve = [](const models::streaming::Config& config) {
            const adl::ComposedModel model = models::streaming::compose(config);
            const ctmc::MarkovModel markov = ctmc::build_markov(model);
            const auto pi = ctmc::steady_state(markov.chain);
            const auto measures = models::streaming::measures();
            // Rebuild the energy measure with the configured wake-up power.
            adl::Measure energy = measures[models::streaming::kEnergyRate];
            energy.clauses[2] = adl::state_reward_in("NIC", "NIC_WakingUp",
                                                     config.params.power_waking);
            const double rate = ctmc::evaluate_measure(markov, model, pi, energy);
            const double frames = ctmc::evaluate_measure(
                markov, model, pi, measures[models::streaming::kFramesReceived]);
            return rate / frames;
        };
        const double epf_dpm = solve(with);
        const double epf_nodpm = solve(without);
        table.add_row({power, epf_dpm, epf_nodpm,
                       100.0 * (1.0 - epf_dpm / epf_nodpm)});
    }
    table.print();
    std::printf(
        "(the saving shrinks as waking the NIC up gets more expensive; the\n"
        " DPM stays profitable until the transient dominates the doze gain)\n");
}

void first_passage_to_overflow() {
    std::printf(
        "== Ablation 4: expected time to the first AP-buffer overflow ==\n");
    Table table("first-passage analysis on the streaming Markov model",
                {"awake_ms", "E[T_overflow]_ms", "P(doze)"});
    for (const double period : {50.0, 100.0, 200.0, 400.0, 800.0}) {
        const adl::ComposedModel model =
            models::streaming::compose(models::streaming::markovian(period, true));
        const ctmc::MarkovModel markov = ctmc::build_markov(model);

        const auto full_mask =
            adl::state_mask(model, adl::InStatePredicate{"AP", "AP_Buffer(10,"});
        std::vector<char> targets(markov.chain.num_states(), 0);
        for (ctmc::TangibleId t = 0; t < markov.chain.num_states(); ++t) {
            targets[t] = full_mask[markov.orig_of[t]];
        }
        const auto h = ctmc::expected_hitting_times(markov.chain, targets, 0);
        double expected = 0.0;
        for (const auto& [state, prob] : markov.initial_distribution) {
            expected += prob * h[state];
        }

        const auto pi = ctmc::steady_state(markov.chain);
        const double doze = ctmc::state_probability(
            markov, model, pi, adl::InStatePredicate{"NIC", "NIC_Doze"});
        table.add_row({period, expected, doze});
    }
    table.print();
    std::printf(
        "(longer awake periods keep the NIC asleep longer, so the first\n"
        " buffer overflow arrives sooner — an exact first-passage statement\n"
        " of Fig. 4's loss trend)\n");
}

}  // namespace

int main(int argc, char** argv) {
    const dpma::bench::ScopedObservation observation("ablation_policies", argc, argv);
    ablate_policy();
    ablate_client_timeout();
    ablate_wakeup_power();
    first_passage_to_overflow();
    return 0;
}
