/// \file bench_fig7_tradeoff_rpc.cpp
/// Reproduces Fig. 7: the energy-per-request vs waiting-time tradeoff curve
/// of the rpc system, traced by sweeping the DPM shutdown timeout, for both
/// the Markovian and the general model.
///
/// Paper shapes to observe:
///  * the two model families disagree noticeably for rpc (the Markovian
///    approximation is sizeable here);
///  * several points of the *general* curve lie beyond the Pareto frontier:
///    timeouts close to the actual idle period (~11.3 ms) are dominated both
///    in energy and in performance (the DPM is counterproductive there).

#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

namespace {

struct TradeoffPoint {
    double timeout;
    double waiting;
    double energy;
    bool dominated = false;
};

/// Marks points dominated by another point (lower waiting AND lower energy).
void mark_dominated(std::vector<TradeoffPoint>& points) {
    for (auto& p : points) {
        for (const auto& q : points) {
            if (&p != &q && q.waiting <= p.waiting && q.energy <= p.energy &&
                (q.waiting < p.waiting || q.energy < p.energy)) {
                p.dominated = true;
                break;
            }
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dpma::bench;
    const ScopedObservation observation("fig7_tradeoff_rpc", argc, argv);
    std::printf("== Fig. 7: rpc energy/request vs waiting time tradeoff ==\n");

    const std::vector<double> timeouts{0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 11.0,
                                       11.3, 12.0, 13.0, 15.0, 20.0, 25.0};
    const int reps = 20;
    const double horizon = 25000.0;

    std::vector<TradeoffPoint> markov;
    std::vector<TradeoffPoint> general;
    for (const double t : timeouts) {
        const RpcPoint m = rpc_markov_point(t, true);
        markov.push_back({t, m.waiting_per_request, m.energy_per_request});
        const RpcPoint g =
            rpc_general_point(t, true, reps, horizon, 600 + static_cast<int>(t * 10));
        general.push_back({t, g.waiting_per_request, g.energy_per_request});
    }
    mark_dominated(markov);
    mark_dominated(general);

    Table table("tradeoff curves (dominated=1 marks sub-Pareto points)",
                {"timeout_ms", "wait_markov", "epr_markov", "dom_markov",
                 "wait_general", "epr_general", "dom_general"});
    for (std::size_t i = 0; i < timeouts.size(); ++i) {
        table.add_row({timeouts[i], markov[i].waiting, markov[i].energy,
                       markov[i].dominated ? 1.0 : 0.0, general[i].waiting,
                       general[i].energy, general[i].dominated ? 1.0 : 0.0});
    }
    table.print();

    int dominated_general = 0;
    for (const auto& p : general) {
        if (p.dominated) ++dominated_general;
    }
    std::printf(
        "\nsummary: %d of %zu general-model points are beyond the Pareto "
        "frontier (counterproductive timeouts near the 11.3 ms idle period)\n",
        dominated_general, general.size());
    return 0;
}
