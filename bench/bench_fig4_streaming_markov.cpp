/// \file bench_fig4_streaming_markov.cpp
/// Reproduces Fig. 4: energy per frame, frame-loss probability, frame-miss
/// probability and quality of the streaming system as functions of the PSP
/// awake period (0..800 ms), from the Markovian model (Sect. 4.2).
///
/// Runs on the experiment engine: the awake-period axis is a declarative
/// grid, points execute on the pool (DPMA_JOBS) and the composed streaming
/// state space is built once and rate-patched per point.
///
/// Paper shapes to observe:
///  * the DPM impact grows with the awake period;
///  * energy per frame falls steeply up to ~100 ms, then flattens
///    (diminishing marginal savings);
///  * quality degrades monotonically; the loss rate is *non-monotonic*
///    (client-buffer pressure vs AP-buffer pressure);
///  * around 50 ms: large energy saving at negligible quality cost.

#include <chrono>
#include <cstdio>

#include "bench/harness.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
    using namespace dpma::bench;
    namespace exp = dpma::exp;
    ScopedObservation observation("fig4_streaming_markov", argc, argv);
    std::printf("== Fig. 4: streaming Markovian model, DPM vs NO-DPM ==\n");

    const std::vector<double> periods = {0.0,   10.0,  25.0,  50.0,  75.0,
                                         100.0, 150.0, 200.0, 300.0, 400.0,
                                         500.0, 600.0, 700.0, 800.0};

    const auto started = std::chrono::steady_clock::now();
    exp::RunOptions options;
    const exp::ResultSet no_dpm =
        exp::run(streaming_markov_experiment({100.0}, false), options);
    const exp::ResultSet sweep =
        exp::run(streaming_markov_experiment(periods, true), options);
    observation.record(no_dpm);
    observation.record(sweep);
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - started;

    const StreamingPoint base = streaming_point_from(no_dpm.at(0).result.values, {});
    std::printf("NO-DPM baseline: energy/frame=%.2f loss=%.4f miss=%.4f quality=%.4f\n",
                base.energy_per_frame, base.loss, base.miss, base.quality);

    Table table("streaming / Markov: sweep of the PSP awake period",
                {"awake_ms", "epf_dpm", "epf_nodpm", "loss_dpm", "loss_nodpm",
                 "miss_dpm", "miss_nodpm", "qual_dpm", "qual_nodpm"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const StreamingPoint dpm = streaming_point_from(sweep.at(i).result.values, {});
        table.add_row({periods[i], dpm.energy_per_frame, base.energy_per_frame, dpm.loss,
                       base.loss, dpm.miss, base.miss, dpm.quality, base.quality});
    }
    table.print();

    const StreamingPoint p50 = streaming_point_from(sweep.at(3).result.values, {});
    const StreamingPoint p100 = streaming_point_from(sweep.at(5).result.values, {});
    const StreamingPoint p200 = streaming_point_from(sweep.at(7).result.values, {});
    std::printf(
        "\nsummary: awake=50ms saves %.0f%% energy/frame at %.3f quality drop; "
        "100->200ms adds only %.0f%% more saving but drops quality by %.3f\n",
        100.0 * (1.0 - p50.energy_per_frame / base.energy_per_frame),
        base.quality - p50.quality,
        100.0 * (p100.energy_per_frame - p200.energy_per_frame) /
            base.energy_per_frame,
        p100.quality - p200.quality);

    const exp::ModelCache::Stats stats = exp::ModelCache::global_stats();
    std::printf("engine: %zu points, jobs=%zu, cache hits=%llu misses=%llu, %.3fs\n",
                sweep.size() + no_dpm.size(), exp::default_jobs(),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses), elapsed.count());
    return 0;
}
