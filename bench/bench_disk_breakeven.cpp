/// \file bench_disk_breakeven.cpp
/// Break-even analysis of the disk case study (ours; the canonical example
/// of the DPM survey the paper cites as [1]).
///
/// Two sweeps on the Markovian model:
///
///  1. workload sweep — the mean quiet period crosses the break-even time
///     T_be = E_wake / (P_idle - P_sleep): below it the DPM *wastes* energy
///     (every sleep pays the spin-up without amortising it), above it the
///     DPM wins.  This is the disk-domain analogue of the rpc general
///     model's counterproductive region (Fig. 3 right / Fig. 7);
///
///  2. timeout sweep at a long quiet period — energy falls and response
///     time rises as the timeout shrinks, the familiar tradeoff.

#include <cstdio>

#include "bench/harness.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/disk.hpp"

namespace {

using namespace dpma;
using namespace dpma::bench;
namespace md = models::disk;

struct DiskPoint {
    double power;
    double response_time;
    double completed;
};

DiskPoint solve(const md::Config& config) {
    const adl::ComposedModel model = md::compose(config);
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    const auto ms = md::measures(config.params);
    const double power = ctmc::evaluate_measure(markov, model, pi, ms[md::kPower]);
    const double completed =
        ctmc::evaluate_measure(markov, model, pi, ms[md::kCompleted]);
    const double queue =
        ctmc::evaluate_measure(markov, model, pi, ms[md::kQueueLength]);
    return DiskPoint{power, queue / completed, completed};
}

}  // namespace

int main(int argc, char** argv) {
    const dpma::bench::ScopedObservation observation("disk_breakeven", argc, argv);
    const md::Params defaults;
    std::printf("== disk drive: break-even analysis (DPM survey example) ==\n");
    std::printf("power levels: active %.2f / idle %.2f / sleep %.2f / wake %.2f W; "
                "spin-up %.0f ms; analytic break-even time %.0f ms\n",
                defaults.power_active, defaults.power_idle, defaults.power_sleep,
                defaults.power_wakeup, defaults.wakeup_time,
                defaults.break_even_time());

    Table crossover("sweep 1: mean quiet period vs the break-even time "
                    "(timeout 500 ms)",
                    {"quiet_ms", "power_dpm", "power_nodpm", "saving_pct"});
    for (const double quiet : {1000.0, 2000.0, 4000.0, 6000.0, 10000.0, 20000.0,
                               50000.0}) {
        md::Config with = md::markovian(500.0, true);
        with.params.quiet_length = quiet;
        md::Config without = md::markovian(500.0, false);
        without.params.quiet_length = quiet;
        const DiskPoint a = solve(with);
        const DiskPoint b = solve(without);
        crossover.add_row({quiet, a.power, b.power,
                           100.0 * (1.0 - a.power / b.power)});
    }
    crossover.print();
    std::printf(
        "\n(the saving changes sign near the %.0f ms break-even: sleeping into\n"
        " short quiet periods pays the 3 W spin-up without amortising it —\n"
        " the disk-domain analogue of rpc's counterproductive timeouts)\n",
        defaults.break_even_time());

    Table timeout_sweep("sweep 2: DPM timeout at quiet = 20 s",
                        {"timeout_ms", "power_W", "resp_ms", "tput_per_ms"});
    for (const double timeout : {0.0, 100.0, 500.0, 1000.0, 2000.0, 5000.0,
                                 10000.0}) {
        const DiskPoint p = solve(md::markovian(timeout, true));
        timeout_sweep.add_row({timeout, p.power, p.response_time, p.completed});
    }
    timeout_sweep.print();
    const DiskPoint base = solve(md::markovian(500.0, false));
    std::printf(
        "\nNO-DPM baseline: power %.3f W, response %.1f ms — the timeout dials\n"
        "between the two extremes; timeouts beyond the quiet period disable\n"
        "the DPM in practice\n",
        base.power, base.response_time);
    return 0;
}
