/// \file bench_fig3_rpc_general.cpp
/// Reproduces the right-hand side of Fig. 3: the same three rpc metrics from
/// the *general* model (deterministic service/awake/processing/timeout/
/// shutdown delays, normally distributed channel delay), estimated by
/// simulation (Sect. 5.2).
///
/// Paper shapes to observe — the bi-modal dependence on the shutdown
/// timeout around the actual idle period (~11.3 ms):
///  * below it, energy per request grows linearly with the timeout while
///    throughput and waiting time stay flat;
///  * above it, the DPM has no effect at all;
///  * the transition is smooth only because of the Gaussian channel delay;
///  * near the idle period the DPM is *counterproductive* (wakes up right
///    after every shutdown).

#include <cstdio>

#include "bench/harness.hpp"

int main() {
    using namespace dpma::bench;
    std::printf("== Fig. 3 (right): rpc general model, DPM vs NO-DPM ==\n");
    std::printf("(30 replications, 90%% CI half-widths on throughput)\n");

    const int reps = 30;
    const double horizon = 30000.0;  // msec, scaled by DPMA_BENCH_SCALE

    const RpcPoint base = rpc_general_point(10.0, false, reps, horizon, 101);

    Table table("rpc / general: sweep of the deterministic shutdown timeout",
                {"timeout_ms", "tput_dpm", "tput_hw", "tput_nodpm", "wait_dpm",
                 "wait_nodpm", "epr_dpm", "epr_nodpm"});
    for (const double timeout : {0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 10.5, 11.0, 11.3,
                                 11.6, 12.0, 13.0, 15.0, 20.0, 25.0}) {
        const RpcPoint dpm = rpc_general_point(timeout, true, reps, horizon,
                                               1000 + static_cast<int>(timeout * 10));
        table.add_row({timeout, dpm.throughput, dpm.throughput_hw, base.throughput,
                       dpm.waiting_per_request, base.waiting_per_request,
                       dpm.energy_per_request, base.energy_per_request});
    }
    table.print();

    const RpcPoint below = rpc_general_point(5.0, true, reps, horizon, 77);
    const RpcPoint near = rpc_general_point(11.3, true, reps, horizon, 78);
    const RpcPoint above = rpc_general_point(20.0, true, reps, horizon, 79);
    std::printf(
        "\nsummary: energy/request %.3f (t=5) < %.3f (t=11.3, counterproductive "
        "region) ; t=20 matches NO-DPM (%.3f vs %.3f)\n",
        below.energy_per_request, near.energy_per_request, above.energy_per_request,
        base.energy_per_request);
    return 0;
}
