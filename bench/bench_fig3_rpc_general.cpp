/// \file bench_fig3_rpc_general.cpp
/// Reproduces the right-hand side of Fig. 3: the same three rpc metrics from
/// the *general* model (deterministic service/awake/processing/timeout/
/// shutdown delays, normally distributed channel delay), estimated by
/// simulation (Sect. 5.2).
///
/// Runs on the experiment engine: sweep points and, within each point, the
/// 30 simulation replications execute as independent jobs on the pool
/// (DPMA_JOBS); seeds derive from (base_seed, point_index, replication), so
/// any jobs count reproduces the same numbers.
///
/// Paper shapes to observe — the bi-modal dependence on the shutdown
/// timeout around the actual idle period (~11.3 ms):
///  * below it, energy per request grows linearly with the timeout while
///    throughput and waiting time stay flat;
///  * above it, the DPM has no effect at all;
///  * the transition is smooth only because of the Gaussian channel delay;
///  * near the idle period the DPM is *counterproductive* (wakes up right
///    after every shutdown).

#include <chrono>
#include <cstdio>

#include "bench/harness.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
    using namespace dpma::bench;
    namespace exp = dpma::exp;
    ScopedObservation observation("fig3_rpc_general", argc, argv);
    std::printf("== Fig. 3 (right): rpc general model, DPM vs NO-DPM ==\n");
    std::printf("(30 replications, 90%% CI half-widths on throughput)\n");

    const int reps = 30;
    const double horizon = 30000.0;  // msec, scaled by DPMA_BENCH_SCALE

    const std::vector<double> timeouts = {0.0,  2.0,  4.0,  6.0,  8.0,
                                          10.0, 10.5, 11.0, 11.3, 11.6,
                                          12.0, 13.0, 15.0, 20.0, 25.0};

    const auto started = std::chrono::steady_clock::now();
    exp::RunOptions options;
    options.base_seed = 101;
    const exp::ResultSet sweep =
        exp::run(rpc_general_experiment(timeouts, true, reps, horizon), options);
    const exp::ResultSet no_dpm =
        exp::run(rpc_general_experiment({10.0}, false, reps, horizon), options);
    observation.record(sweep);
    observation.record(no_dpm);
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - started;

    const RpcPoint base =
        rpc_point_from(no_dpm.at(0).result.values, no_dpm.at(0).result.half_widths);

    Table table("rpc / general: sweep of the deterministic shutdown timeout",
                {"timeout_ms", "tput_dpm", "tput_hw", "tput_nodpm", "wait_dpm",
                 "wait_nodpm", "epr_dpm", "epr_nodpm"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const RpcPoint dpm =
            rpc_point_from(sweep.at(i).result.values, sweep.at(i).result.half_widths);
        table.add_row({timeouts[i], dpm.throughput, dpm.throughput_hw, base.throughput,
                       dpm.waiting_per_request, base.waiting_per_request,
                       dpm.energy_per_request, base.energy_per_request});
    }
    table.print();

    // Representative points of the three regimes, straight from the sweep:
    // t=4 (below the idle period), t=11.3 (counterproductive), t=20 (inert).
    const RpcPoint below = rpc_point_from(sweep.at(2).result.values, {});
    const RpcPoint near = rpc_point_from(sweep.at(8).result.values, {});
    const RpcPoint above = rpc_point_from(sweep.at(13).result.values, {});
    std::printf(
        "\nsummary: energy/request %.3f (t=4) < %.3f (t=11.3, counterproductive "
        "region) ; t=20 matches NO-DPM (%.3f vs %.3f)\n",
        below.energy_per_request, near.energy_per_request, above.energy_per_request,
        base.energy_per_request);

    const exp::ModelCache::Stats stats = exp::ModelCache::global_stats();
    std::printf("engine: %zu points x %d reps, jobs=%zu, cache hits=%llu misses=%llu, "
                "%.3fs\n",
                sweep.size() + no_dpm.size(), reps, exp::default_jobs(),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses), elapsed.count());
    return 0;
}
