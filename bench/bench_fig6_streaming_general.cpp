/// \file bench_fig6_streaming_general.cpp
/// Reproduces Fig. 6: the four streaming metrics from the *general* model
/// (deterministic generation/render/check/wakeup delays, Gaussian channel),
/// estimated by simulation (Sect. 5.3).
///
/// Paper shapes to observe:
///  * the energy-per-frame curve resembles the Markovian one (Fig. 4);
///  * the performance metrics differ qualitatively from the Markovian
///    prediction: **no loss up to ~400 ms** and **no miss up to ~100 ms**
///    awake period, so a MAC-level DPM with a 100 ms awake period is
///    transparent to the client while saving >70% of the NIC energy —
///    the Cisco Aironet 350 comparison of Sect. 5.3.
///
/// The awake-period sweep runs on the experiment engine, so the run record
/// (BENCH_fig6_streaming_general.json) carries a result series with
/// per-point elapsed_s — the series `dpma_cli report` diffs against a
/// baseline record to catch simulator performance regressions.

#include <cstdio>

#include "bench/harness.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
    using namespace dpma;
    using namespace dpma::bench;
    ScopedObservation observation("fig6_streaming_general", argc, argv);
    std::printf("== Fig. 6: streaming general model, DPM vs NO-DPM ==\n");
    std::printf("(10 replications per point)\n");

    const int reps = 10;
    const double horizon = 120000.0;

    const StreamingPoint base = streaming_general_point(100.0, false, reps, horizon, 42);
    std::printf("NO-DPM baseline: energy/frame=%.2f loss=%.4f miss=%.4f quality=%.4f\n",
                base.energy_per_frame, base.loss, base.miss, base.quality);

    const exp::Experiment experiment = streaming_general_experiment(
        {0.0, 25.0, 50.0, 100.0, 150.0, 200.0, 300.0, 400.0, 600.0, 800.0}, true,
        reps, horizon);
    exp::RunOptions run;
    run.base_seed = 4200;  // per-point seeds are pinned inside the experiment
    const exp::ResultSet results = exp::run(experiment, run);
    observation.record(results);

    Table table("streaming / general: sweep of the PSP awake period",
                {"awake_ms", "epf_dpm", "epf_ci", "loss_dpm", "miss_dpm", "qual_dpm"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const exp::PointRecord& record = results.at(i);
        table.add_row({record.point.at("awake_ms"),
                       results.value(i, "energy_per_frame"),
                       results.half_width(i, "energy_per_frame"),
                       results.value(i, "loss"), results.value(i, "miss"),
                       results.value(i, "quality")});
    }
    table.print();

    const StreamingPoint p100 = streaming_general_point(100.0, true, reps, horizon, 7);
    const StreamingPoint p200 = streaming_general_point(200.0, true, reps, horizon, 8);
    std::printf(
        "\nsummary: awake=100ms -> miss=%.4f, loss=%.4f, energy saving=%.0f%% "
        "(transparent); awake=200ms -> quality=%.3f (degraded, negligible "
        "extra saving) — cf. the Aironet 350 choice discussed in Sect. 5.3\n",
        p100.miss, p100.loss,
        100.0 * (1.0 - p100.energy_per_frame / base.energy_per_frame),
        p200.quality);
    return 0;
}
