#include "bench/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/text.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "sim/gsmp.hpp"

namespace dpma::bench {
namespace {

/// Replaces every exponential rate of the composed graph by an explicitly
/// general exponential distribution: the Fig. 5 cross-validation runs the
/// *simulator* on a distribution-for-distribution copy of the Markov model.
void exponentialize(adl::ComposedModel& model) {
    for (lts::StateId s = 0; s < model.graph.num_states(); ++s) {
        const auto out = model.graph.out(s);
        for (std::size_t k = 0; k < out.size(); ++k) {
            if (const auto* exp_rate = std::get_if<lts::RateExp>(&out[k].rate)) {
                model.graph.set_rate(
                    s, k, lts::RateGeneral{Dist::exponential(exp_rate->rate)});
            }
        }
    }
}

RpcPoint derive_rpc(const std::vector<double>& values,
                    const std::vector<double>& half_widths) {
    RpcPoint point;
    point.throughput = values[models::rpc::kThroughput];
    point.energy_rate = values[models::rpc::kEnergyRate];
    if (point.throughput > 0.0) {
        point.waiting_per_request = values[models::rpc::kWaitingProb] / point.throughput;
        point.energy_per_request = point.energy_rate / point.throughput;
    }
    if (!half_widths.empty()) {
        point.throughput_hw = half_widths[models::rpc::kThroughput];
        point.energy_rate_hw = half_widths[models::rpc::kEnergyRate];
    }
    return point;
}

StreamingPoint derive_streaming(const std::vector<double>& values,
                                const std::vector<double>& half_widths) {
    namespace ms = models::streaming;
    StreamingPoint point;
    const double fetches = values[ms::kMiss] + values[ms::kHits];
    if (values[ms::kFramesReceived] > 0.0) {
        point.energy_per_frame = values[ms::kEnergyRate] / values[ms::kFramesReceived];
        if (!half_widths.empty()) {
            point.energy_per_frame_hw =
                half_widths[ms::kEnergyRate] / values[ms::kFramesReceived];
        }
    }
    if (values[ms::kGenerated] > 0.0) {
        point.loss = (values[ms::kApLoss] + values[ms::kBLoss]) / values[ms::kGenerated];
    }
    if (fetches > 0.0) {
        point.miss = values[ms::kMiss] / fetches;
        point.quality = values[ms::kHits] / fetches;
    }
    return point;
}

std::vector<double> solve_measures(const adl::ComposedModel& model,
                                   const std::vector<adl::Measure>& measures) {
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const std::vector<double> pi = ctmc::steady_state(markov.chain);
    std::vector<double> values;
    values.reserve(measures.size());
    for (const adl::Measure& m : measures) {
        values.push_back(ctmc::evaluate_measure(markov, model, pi, m));
    }
    return values;
}

struct SimulatedValues {
    std::vector<double> means;
    std::vector<double> half_widths;
};

SimulatedValues simulate_measures(const adl::ComposedModel& model,
                                  const std::vector<adl::Measure>& measures,
                                  int replications, double warmup, double horizon,
                                  std::uint64_t seed) {
    const sim::Simulator simulator(model, measures);
    sim::SimOptions options;
    options.warmup = warmup;
    options.horizon = horizon * effort_scale();
    options.seed = seed;
    const auto estimates =
        sim::simulate_replications(simulator, options, replications, 0.90);
    SimulatedValues out;
    for (const sim::Estimate& e : estimates) {
        out.means.push_back(e.mean);
        out.half_widths.push_back(e.half_width);
    }
    return out;
}

}  // namespace

double effort_scale() {
    const char* env = std::getenv("DPMA_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double value = std::strtod(env, nullptr);
    return value > 0.0 ? value : 1.0;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(const std::vector<double>& values) { rows_.push_back(values); }

void Table::print() const {
    std::printf("\n### %s\n", title_.c_str());
    std::vector<int> widths;
    widths.reserve(columns_.size());
    for (const std::string& c : columns_) {
        widths.push_back(std::max(14, static_cast<int>(c.size()) + 2));
    }
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        std::printf("%*s", widths[i], columns_[i].c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            const int width = i < widths.size() ? widths[i] : 14;
            std::printf("%*s", width, format_fixed(row[i], 6).c_str());
        }
        std::printf("\n");
    }
    std::fflush(stdout);
}

RpcPoint rpc_markov_point(double shutdown_timeout, bool dpm) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(shutdown_timeout, dpm));
    return derive_rpc(solve_measures(model, models::rpc::measures()), {});
}

RpcPoint rpc_general_point(double shutdown_timeout, bool dpm, int replications,
                           double horizon, std::uint64_t seed) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::general(shutdown_timeout, dpm));
    const SimulatedValues sim = simulate_measures(
        model, models::rpc::measures(), replications, 500.0, horizon, seed);
    return derive_rpc(sim.means, sim.half_widths);
}

RpcPoint rpc_general_exp_point(double shutdown_timeout, bool dpm, int replications,
                               double horizon, std::uint64_t seed) {
    adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(shutdown_timeout, dpm));
    exponentialize(model);
    const SimulatedValues sim = simulate_measures(
        model, models::rpc::measures(), replications, 500.0, horizon, seed);
    return derive_rpc(sim.means, sim.half_widths);
}

StreamingPoint streaming_markov_point(double awake_period, bool dpm) {
    const adl::ComposedModel model =
        models::streaming::compose(models::streaming::markovian(awake_period, dpm));
    return derive_streaming(solve_measures(model, models::streaming::measures()), {});
}

StreamingPoint streaming_general_point(double awake_period, bool dpm, int replications,
                                       double horizon, std::uint64_t seed) {
    const adl::ComposedModel model =
        models::streaming::compose(models::streaming::general(awake_period, dpm));
    const SimulatedValues sim = simulate_measures(
        model, models::streaming::measures(), replications, 3000.0, horizon, seed);
    return derive_streaming(sim.means, sim.half_widths);
}

}  // namespace dpma::bench
