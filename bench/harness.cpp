#include "bench/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "core/error.hpp"
#include "core/text.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "core/stats_math.hpp"
#include "exp/pool.hpp"
#include "exp/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/batch_means.hpp"
#include "sim/gsmp.hpp"

namespace dpma::bench {
namespace {

/// Reference rate point the cached sweep skeletons are composed at; any
/// strictly positive value works, each point overwrites the rate anyway.
constexpr double kSkeletonTimeout = 1.0;

/// Replaces every exponential rate of the composed graph by an explicitly
/// general exponential distribution: the Fig. 5 cross-validation runs the
/// *simulator* on a distribution-for-distribution copy of the Markov model.
void exponentialize(adl::ComposedModel& model) {
    for (lts::StateId s = 0; s < model.graph.num_states(); ++s) {
        const auto out = model.graph.out(s);
        for (std::size_t k = 0; k < out.size(); ++k) {
            if (const auto* exp_rate = std::get_if<lts::RateExp>(&out[k].rate)) {
                model.graph.set_rate(
                    s, k, lts::RateGeneral{Dist::exponential(exp_rate->rate)});
            }
        }
    }
}

std::vector<double> solve_measures(const adl::ComposedModel& model,
                                   const std::vector<adl::Measure>& measures) {
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const std::vector<double> pi = ctmc::steady_state(markov.chain);
    std::vector<double> values;
    values.reserve(measures.size());
    for (const adl::Measure& m : measures) {
        values.push_back(ctmc::evaluate_measure(markov, model, pi, m));
    }
    return values;
}

struct SimulatedValues {
    std::vector<double> means;
    std::vector<double> half_widths;
};

SimulatedValues simulate_measures(const adl::ComposedModel& model,
                                  const std::vector<adl::Measure>& measures,
                                  int replications, double warmup, double horizon,
                                  std::uint64_t seed,
                                  exp::ThreadPool* pool = nullptr) {
    const sim::Simulator simulator(model, measures);
    sim::SimOptions options;
    options.warmup = warmup;
    options.horizon = horizon * effort_scale();
    options.seed = seed;
    const auto estimates =
        pool != nullptr
            ? exp::simulate_replications(simulator, options, replications, 0.90, *pool)
            : sim::simulate_replications(simulator, options, replications, 0.90);
    SimulatedValues out;
    for (const sim::Estimate& e : estimates) {
        out.means.push_back(e.mean);
        out.half_widths.push_back(e.half_width);
    }
    return out;
}

std::vector<std::string> measure_names(const std::vector<adl::Measure>& measures) {
    std::vector<std::string> names;
    names.reserve(measures.size());
    for (const adl::Measure& m : measures) names.push_back(m.name);
    return names;
}

/// Convergence record of a replication-based estimate, in the same shape as
/// a batch-means trajectory: entry k of the half-width trajectory uses the
/// first k+2 replications only.  Lag-1 autocorrelation stays 0 — the
/// replications are independent by construction.
std::vector<sim::BatchEstimate> replication_convergence(
    const std::vector<sim::Estimate>& estimates, double confidence) {
    std::vector<sim::BatchEstimate> convergence(estimates.size());
    for (std::size_t m = 0; m < estimates.size(); ++m) {
        const std::vector<double>& samples = estimates[m].samples;
        convergence[m].mean = estimates[m].mean;
        convergence[m].half_width = estimates[m].half_width;
        for (std::size_t k = 2; k <= samples.size(); ++k) {
            const std::vector<double> prefix(
                samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(k));
            convergence[m].cumulative_half_widths.push_back(
                confidence_half_width(prefix, confidence));
        }
    }
    return convergence;
}

std::string point_key(const char* family, bool dpm, double value) {
    return std::string(family) + (dpm ? "/dpm/" : "/nodpm/") + format_fixed(value, 6);
}

/// Composed rpc model for one sweep point, via the cached skeleton when the
/// timeout only changes a rate (timeout > 0 with DPM) and from scratch —
/// also cached — when it changes the structure (immediate shutdown) or when
/// the family ignores it (NO-DPM).
std::shared_ptr<const adl::ComposedModel> rpc_point_model(bool general, bool dpm,
                                                          double timeout) {
    const char* family = general ? "rpc/general" : "rpc/markov";
    const std::string key =
        dpm ? point_key(family, true, timeout) : std::string(family) + "/nodpm";
    return figure_cache().composed(key, [&] {
        const auto config = general ? models::rpc::general(timeout, dpm)
                                    : models::rpc::markovian(timeout, dpm);
        if (!dpm || timeout <= 0.0) return models::rpc::compose(config);
        const auto skeleton = figure_cache().composed(
            std::string(family) + "/skeleton", [&] {
                return models::rpc::compose(general
                                                ? models::rpc::general(kSkeletonTimeout, true)
                                                : models::rpc::markovian(kSkeletonTimeout, true));
            });
        return general ? exp::with_dist(*skeleton, "DPM", "send_shutdown",
                                        Dist::deterministic(timeout))
                       : exp::with_exp_rate(*skeleton, "DPM", "send_shutdown",
                                            1.0 / timeout);
    });
}

/// Composed general streaming model for one sweep point.  The awake period
/// only parameterises the DPM's deterministic send_wakeup delay, so points
/// with DPM and period > 0 patch one cached skeleton (same reachable state
/// space, bit-identical to composing from scratch); NO-DPM ignores the
/// period entirely and period <= 0 is left to the from-scratch composer.
std::shared_ptr<const adl::ComposedModel> streaming_general_point_model(bool dpm,
                                                                        double period) {
    const std::string key = dpm ? point_key("streaming/general", true, period)
                                : std::string("streaming/general/nodpm");
    return figure_cache().composed(key, [&] {
        if (!dpm || period <= 0.0) {
            return models::streaming::compose(models::streaming::general(period, dpm));
        }
        const auto skeleton = figure_cache().composed("streaming/general/skeleton", [] {
            return models::streaming::compose(
                models::streaming::general(kSkeletonTimeout, true));
        });
        return exp::with_dist(*skeleton, "DPM", "send_wakeup",
                              Dist::deterministic(period));
    });
}

exp::PointResult solve_cached(const std::shared_ptr<const adl::ComposedModel>& model,
                              const std::string& key,
                              const std::vector<adl::Measure>& measures) {
    const auto markov =
        figure_cache().markov(key, [&] { return ctmc::build_markov(*model); });
    const std::vector<double> pi = ctmc::steady_state(markov->chain);
    exp::PointResult result;
    result.values.reserve(measures.size());
    for (const adl::Measure& m : measures) {
        result.values.push_back(ctmc::evaluate_measure(*markov, *model, pi, m));
    }
    return result;
}

}  // namespace

double effort_scale() { return exp::env_positive_double("DPMA_BENCH_SCALE", 1.0); }

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(const std::vector<double>& values) { rows_.push_back(values); }

void Table::print() const {
    std::printf("\n### %s\n", title_.c_str());
    std::vector<int> widths;
    widths.reserve(columns_.size());
    for (const std::string& c : columns_) {
        widths.push_back(std::max(14, static_cast<int>(c.size()) + 2));
    }
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        std::printf("%*s", widths[i], columns_[i].c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            const int width = i < widths.size() ? widths[i] : 14;
            std::printf("%*s", width, format_fixed(row[i], 6).c_str());
        }
        std::printf("\n");
    }
    std::fflush(stdout);
}

Table table_from(const exp::ResultSet& results) {
    std::vector<std::string> columns = results.params();
    for (const std::string& m : results.measures()) columns.push_back(m);
    Table table(results.name(), std::move(columns));
    for (std::size_t i = 0; i < results.size(); ++i) {
        const exp::PointRecord& record = results.at(i);
        std::vector<double> row;
        for (const auto& [axis, value] : record.point.coords) {
            (void)axis;
            row.push_back(value);
        }
        for (const double v : record.result.values) row.push_back(v);
        table.add_row(row);
    }
    return table;
}

exp::ModelCache& figure_cache() {
    static exp::ModelCache cache;
    return cache;
}

ScopedObservation::ScopedObservation() {
    const char* env = std::getenv("DPMA_BENCH_BREAKDOWN");
    enabled_ = env == nullptr || std::string_view(env) != "0";
    if (!enabled_) return;
    obs::clear_trace();
    obs::set_tracing(true);
}

ScopedObservation::ScopedObservation(std::string tool, int argc,
                                     const char* const* argv)
    : ScopedObservation() {
    report_file_ = obs::report_path(tool);
    if (report_file_.empty()) return;  // DPMA_REPORT=0
    report_ = std::make_unique<obs::RunReport>(std::move(tool));
    if (argc > 0 && argv != nullptr) {
        report_->set_args(std::vector<std::string>(argv, argv + argc));
    }
}

void ScopedObservation::record(const exp::ResultSet& results) {
    if (report_ == nullptr) return;
    report_->add_series(results.json());
}

ScopedObservation::~ScopedObservation() {
    if (report_ != nullptr) {
        // Before the breakdown turns tracing off: the record's span summary
        // and metrics snapshot should match what gets printed below.
        try {
            report_->write(report_file_);
            std::fprintf(stderr, "run record: %s\n", report_file_.c_str());
        } catch (const Error& e) {
            std::fprintf(stderr, "run record failed: %s\n", e.what());
        }
    }
    if (!enabled_) return;
    obs::set_tracing(false);
    std::printf("\n### instrumentation breakdown\n");
    std::printf("%-28s %10s %14s %14s\n", "span", "count", "total_ms", "mean_us");
    for (const obs::SpanStats& s : obs::span_summary()) {
        std::printf("%-28s %10llu %14.3f %14.1f\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.count), s.total_us / 1000.0,
                    s.count == 0 ? 0.0 : s.total_us / static_cast<double>(s.count));
    }
    std::printf("\nmetrics:\n");
    const std::string metrics = obs::metrics_text();
    std::string_view remaining = metrics;
    while (!remaining.empty()) {
        const std::size_t eol = remaining.find('\n');
        const std::string_view line = remaining.substr(0, eol);
        std::printf("  %.*s\n", static_cast<int>(line.size()), line.data());
        if (eol == std::string_view::npos) break;
        remaining.remove_prefix(eol + 1);
    }
    std::fflush(stdout);
}

RpcPoint rpc_point_from(const std::vector<double>& values,
                        const std::vector<double>& half_widths) {
    RpcPoint point;
    point.throughput = values[models::rpc::kThroughput];
    point.energy_rate = values[models::rpc::kEnergyRate];
    if (point.throughput > 0.0) {
        point.waiting_per_request = values[models::rpc::kWaitingProb] / point.throughput;
        point.energy_per_request = point.energy_rate / point.throughput;
    }
    if (!half_widths.empty()) {
        point.throughput_hw = half_widths[models::rpc::kThroughput];
        point.energy_rate_hw = half_widths[models::rpc::kEnergyRate];
    }
    return point;
}

StreamingPoint streaming_point_from(const std::vector<double>& values,
                                    const std::vector<double>& half_widths) {
    namespace ms = models::streaming;
    StreamingPoint point;
    const double fetches = values[ms::kMiss] + values[ms::kHits];
    if (values[ms::kFramesReceived] > 0.0) {
        point.energy_per_frame = values[ms::kEnergyRate] / values[ms::kFramesReceived];
        if (!half_widths.empty()) {
            point.energy_per_frame_hw =
                half_widths[ms::kEnergyRate] / values[ms::kFramesReceived];
        }
    }
    if (values[ms::kGenerated] > 0.0) {
        point.loss = (values[ms::kApLoss] + values[ms::kBLoss]) / values[ms::kGenerated];
    }
    if (fetches > 0.0) {
        point.miss = values[ms::kMiss] / fetches;
        point.quality = values[ms::kHits] / fetches;
    }
    return point;
}

RpcPoint rpc_markov_point(double shutdown_timeout, bool dpm) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(shutdown_timeout, dpm));
    return rpc_point_from(solve_measures(model, models::rpc::measures()), {});
}

RpcPoint rpc_general_point(double shutdown_timeout, bool dpm, int replications,
                           double horizon, std::uint64_t seed, exp::ThreadPool* pool) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::general(shutdown_timeout, dpm));
    const SimulatedValues sim = simulate_measures(
        model, models::rpc::measures(), replications, 500.0, horizon, seed, pool);
    return rpc_point_from(sim.means, sim.half_widths);
}

RpcPoint rpc_general_exp_point(double shutdown_timeout, bool dpm, int replications,
                               double horizon, std::uint64_t seed,
                               exp::ThreadPool* pool) {
    adl::ComposedModel model =
        models::rpc::compose(models::rpc::markovian(shutdown_timeout, dpm));
    exponentialize(model);
    const SimulatedValues sim = simulate_measures(
        model, models::rpc::measures(), replications, 500.0, horizon, seed, pool);
    return rpc_point_from(sim.means, sim.half_widths);
}

StreamingPoint streaming_markov_point(double awake_period, bool dpm) {
    const adl::ComposedModel model =
        models::streaming::compose(models::streaming::markovian(awake_period, dpm));
    return streaming_point_from(solve_measures(model, models::streaming::measures()), {});
}

StreamingPoint streaming_general_point(double awake_period, bool dpm, int replications,
                                       double horizon, std::uint64_t seed,
                                       exp::ThreadPool* pool) {
    const auto model = streaming_general_point_model(dpm, awake_period);
    const SimulatedValues sim = simulate_measures(*model, models::streaming::measures(),
                                                  replications, 3000.0, horizon, seed,
                                                  pool);
    return streaming_point_from(sim.means, sim.half_widths);
}

exp::Experiment rpc_markov_experiment(std::vector<double> timeouts, bool dpm) {
    exp::Experiment experiment;
    experiment.name = dpm ? "fig3_rpc_markov_dpm" : "fig3_rpc_markov_nodpm";
    experiment.grid.axis(exp::Axis::list("timeout_ms", std::move(timeouts)));
    experiment.measures = measure_names(models::rpc::measures());
    experiment.eval = [dpm](const exp::Point& point, const exp::PointContext&) {
        const double timeout = point.at("timeout_ms");
        const auto model = rpc_point_model(false, dpm, timeout);
        const std::string key =
            dpm ? point_key("rpc/markov", true, timeout) : "rpc/markov/nodpm";
        return solve_cached(model, key, models::rpc::measures());
    };
    return experiment;
}

exp::Experiment rpc_general_experiment(std::vector<double> timeouts, bool dpm,
                                       int replications, double horizon) {
    exp::Experiment experiment;
    experiment.name = dpm ? "fig3_rpc_general_dpm" : "fig3_rpc_general_nodpm";
    experiment.grid.axis(exp::Axis::list("timeout_ms", std::move(timeouts)));
    experiment.measures = measure_names(models::rpc::measures());
    experiment.eval = [dpm, replications, horizon](const exp::Point& point,
                                                   const exp::PointContext& context) {
        const double timeout = point.at("timeout_ms");
        const auto model = rpc_point_model(true, dpm, timeout);
        const sim::Simulator simulator(*model, models::rpc::measures());
        sim::SimOptions options;
        options.warmup = 500.0;
        options.horizon = horizon * effort_scale();
        options.seed = context.seed();
        const auto estimates = exp::simulate_replications(simulator, options,
                                                          replications, 0.90,
                                                          *context.pool);
        exp::PointResult result;
        for (const sim::Estimate& e : estimates) {
            result.values.push_back(e.mean);
            result.half_widths.push_back(e.half_width);
        }
        result.diagnostics =
            sim::convergence_json(replication_convergence(estimates, 0.90),
                                  measure_names(models::rpc::measures()));
        return result;
    };
    return experiment;
}

exp::Experiment streaming_general_experiment(std::vector<double> periods, bool dpm,
                                             int replications, double horizon) {
    exp::Experiment experiment;
    experiment.name =
        dpm ? "fig6_streaming_general_dpm" : "fig6_streaming_general_nodpm";
    experiment.grid.axis(exp::Axis::list("awake_ms", std::move(periods)));
    experiment.measures = {"energy_per_frame", "loss", "miss", "quality"};
    experiment.eval = [dpm, replications, horizon](const exp::Point& point,
                                                   const exp::PointContext& context) {
        const double period = point.at("awake_ms");
        const StreamingPoint sp = streaming_general_point(
            period, dpm, replications, horizon,
            4200 + static_cast<std::uint64_t>(period), context.pool);
        exp::PointResult result;
        result.values = {sp.energy_per_frame, sp.loss, sp.miss, sp.quality};
        result.half_widths = {sp.energy_per_frame_hw, 0.0, 0.0, 0.0};
        return result;
    };
    return experiment;
}

exp::Experiment streaming_markov_experiment(std::vector<double> periods, bool dpm) {
    exp::Experiment experiment;
    experiment.name = dpm ? "fig4_streaming_markov_dpm" : "fig4_streaming_markov_nodpm";
    experiment.grid.axis(exp::Axis::list("awake_ms", std::move(periods)));
    experiment.measures = measure_names(models::streaming::measures());
    experiment.eval = [dpm](const exp::Point& point, const exp::PointContext&) {
        const double period = point.at("awake_ms");
        const std::string key =
            dpm ? point_key("streaming/markov", true, period) : "streaming/markov/nodpm";
        const auto model = figure_cache().composed(key, [&] {
            if (!dpm || period <= 0.0) {
                return models::streaming::compose(models::streaming::markovian(period, dpm));
            }
            const auto skeleton =
                figure_cache().composed("streaming/markov/skeleton", [] {
                    return models::streaming::compose(
                        models::streaming::markovian(kSkeletonTimeout, true));
                });
            return exp::with_exp_rate(*skeleton, "DPM", "send_wakeup", 1.0 / period);
        });
        return solve_cached(model, key, models::streaming::measures());
    };
    return experiment;
}

}  // namespace dpma::bench
