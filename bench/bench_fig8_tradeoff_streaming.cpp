/// \file bench_fig8_tradeoff_streaming.cpp
/// Reproduces Fig. 8: the energy-per-frame vs miss-rate tradeoff of the
/// streaming system, traced by sweeping the PSP awake period, for both the
/// Markovian and the general model.
///
/// Paper shapes to observe:
///  * both model families show the same qualitative tradeoff (unlike rpc),
///    though the Markovian approximation is quantitatively sizeable;
///  * on the general curve, sizeable energy savings are available at zero
///    miss-rate cost — the DPM can be completely transparent to the user.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

int main(int argc, char** argv) {
    using namespace dpma::bench;
    const ScopedObservation observation("fig8_tradeoff_streaming", argc, argv);
    std::printf("== Fig. 8: streaming energy/frame vs miss rate tradeoff ==\n");

    const std::vector<double> periods{0.0, 25.0, 50.0, 100.0, 200.0,
                                      300.0, 400.0, 600.0, 800.0};
    const int reps = 8;
    const double horizon = 100000.0;

    Table table("tradeoff curves (sweep: awake period)",
                {"awake_ms", "miss_markov", "epf_markov", "miss_general",
                 "epf_general"});
    double max_transparent_saving = 0.0;
    const StreamingPoint base =
        streaming_general_point(100.0, false, reps, horizon, 4);
    for (const double p : periods) {
        const StreamingPoint m = streaming_markov_point(p, true);
        const StreamingPoint g = streaming_general_point(
            p, true, reps, horizon, 800 + static_cast<int>(p));
        table.add_row({p, m.miss, m.energy_per_frame, g.miss, g.energy_per_frame});
        // "Transparent" = no extra misses beyond the NO-DPM baseline (whose
        // residual misses come from radio-channel losses, not from the DPM).
        if (g.miss <= base.miss + 0.005) {
            max_transparent_saving =
                std::max(max_transparent_saving,
                         1.0 - g.energy_per_frame / base.energy_per_frame);
        }
    }
    table.print();

    std::printf(
        "\nsummary: NO-DPM baseline miss=%.4f; on the general curve up to "
        "%.0f%% of the NIC energy can be saved with no extra misses — the DPM "
        "is completely transparent there\n",
        base.miss, 100.0 * max_transparent_saving);
    return 0;
}
