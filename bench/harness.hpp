#pragma once

/// \file harness.hpp
/// Shared plumbing for the figure-reproduction benches: each paper figure
/// has one binary that sweeps the DPM operation rate and prints the series
/// the paper plots.  Absolute numbers differ from the paper's testbed; the
/// *shapes* (who wins, by what factor, where crossovers fall) are the
/// reproduction target — see EXPERIMENTS.md.

#include <string>
#include <vector>

#include "models/rpc.hpp"
#include "models/streaming.hpp"

namespace dpma::bench {

/// Scale factor for simulation effort, from DPMA_BENCH_SCALE (default 1.0).
/// CI environments can pass 0.2 for quick smoke runs; 5 gives tighter CIs.
[[nodiscard]] double effort_scale();

/// Simple fixed-width table printer (markdown-ish, one row per sweep point).
class Table {
public:
    Table(std::string title, std::vector<std::string> columns);

    void add_row(const std::vector<double>& values);
    void print() const;

private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<double>> rows_;
};

/// One point of the rpc performance comparison (Fig. 3): derived per-request
/// quantities as plotted by the paper.
struct RpcPoint {
    double throughput = 0.0;        ///< requests per msec
    double waiting_per_request = 0.0;  ///< msec (Little's law on P(waiting))
    double energy_per_request = 0.0;   ///< reward units
    double energy_rate = 0.0;          ///< reward units per msec
    // Simulation only: 90% CI half-widths (0 for the analytic solver).
    double throughput_hw = 0.0;
    double energy_rate_hw = 0.0;
};

[[nodiscard]] RpcPoint rpc_markov_point(double shutdown_timeout, bool dpm);
[[nodiscard]] RpcPoint rpc_general_point(double shutdown_timeout, bool dpm,
                                         int replications, double horizon,
                                         std::uint64_t seed);
/// Fig. 5 validation: the general model with *exponential* distributions
/// substituted back in, simulated (30 runs, 90% CI in the paper).
[[nodiscard]] RpcPoint rpc_general_exp_point(double shutdown_timeout, bool dpm,
                                             int replications, double horizon,
                                             std::uint64_t seed);

/// One point of the streaming comparison (Fig. 4 / Fig. 6): the paper's four
/// derived metrics.
struct StreamingPoint {
    double energy_per_frame = 0.0;
    double loss = 0.0;     ///< buffer-full drops / generated frames
    double miss = 0.0;     ///< real-time violations / frame fetches
    double quality = 0.0;  ///< in-time deliveries / frame fetches
    double energy_per_frame_hw = 0.0;
};

[[nodiscard]] StreamingPoint streaming_markov_point(double awake_period, bool dpm);
[[nodiscard]] StreamingPoint streaming_general_point(double awake_period, bool dpm,
                                                     int replications, double horizon,
                                                     std::uint64_t seed);

}  // namespace dpma::bench
