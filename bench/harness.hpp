#pragma once

/// \file harness.hpp
/// Shared plumbing for the figure-reproduction benches: each paper figure
/// has one binary that sweeps the DPM operation rate and prints the series
/// the paper plots.  Absolute numbers differ from the paper's testbed; the
/// *shapes* (who wins, by what factor, where crossovers fall) are the
/// reproduction target — see EXPERIMENTS.md.
///
/// The sweeps themselves run on the experiment engine (src/exp): the
/// *_experiment() builders below describe each figure's parameter grid
/// declaratively; exp::run() executes the points over a thread pool
/// (DPMA_JOBS) and figure_cache() amortises model composition across the
/// sweep — rate points patch a cached skeleton instead of re-exploring the
/// state space.

#include <memory>
#include <string>
#include <vector>

#include "exp/cache.hpp"
#include "exp/experiment.hpp"
#include "exp/pool.hpp"
#include "exp/report.hpp"
#include "models/rpc.hpp"
#include "models/streaming.hpp"
#include "obs/run_report.hpp"

namespace dpma::bench {

/// Scale factor for simulation effort, from DPMA_BENCH_SCALE (default 1.0).
/// CI environments can pass 0.2 for quick smoke runs; 5 gives tighter CIs.
/// Values that do not parse completely as a number > 0 are rejected with a
/// stderr warning and fall back to 1.0.
[[nodiscard]] double effort_scale();

/// Simple fixed-width table printer (markdown-ish, one row per sweep point).
class Table {
public:
    Table(std::string title, std::vector<std::string> columns);

    void add_row(const std::vector<double>& values);
    void print() const;

private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<double>> rows_;
};

/// ResultSet -> Table sink: params then measures as columns, one row per
/// sweep point (the bench_fig* binaries compose fancier tables by hand, but
/// any engine result can be dumped this way).
[[nodiscard]] Table table_from(const exp::ResultSet& results);

/// Process-wide model cache shared by the figure benches.  Hit/miss numbers
/// for reporting come from exp::ModelCache::global_stats() — the same
/// registry counters dpma_cli --metrics dumps.
[[nodiscard]] exp::ModelCache& figure_cache();

/// RAII instrumentation session for a bench main(): enables tracing on
/// construction and, on destruction, prints the per-phase breakdown (span
/// name, count, total/mean time from obs::span_summary()) followed by the
/// metrics registry.  Set DPMA_BENCH_BREAKDOWN=0 to silence it (and skip
/// the tracing overhead).
///
/// When constructed with a tool name it additionally writes an
/// obs::RunReport (run record: provenance, resources, metrics, spans, and
/// every ResultSet handed to record()) to obs::report_path(tool) on
/// destruction — "BENCH_<tool>.json" by default, DPMA_REPORT to move or
/// disable it.  Record-writing is independent of DPMA_BENCH_BREAKDOWN.
class ScopedObservation {
public:
    ScopedObservation();
    /// \p argc/\p argv, when given, are stored in the record verbatim.
    explicit ScopedObservation(std::string tool, int argc = 0,
                               const char* const* argv = nullptr);
    ~ScopedObservation();

    ScopedObservation(const ScopedObservation&) = delete;
    ScopedObservation& operator=(const ScopedObservation&) = delete;

    /// Adds \p results as one series of the run record (no-op without a
    /// tool name).
    void record(const exp::ResultSet& results);

private:
    bool enabled_ = false;
    // Set by the tool-name ctor only; the RunReport's wall clock starts with
    // the bench, so the record's wall_s covers the whole main().
    std::string report_file_;
    std::unique_ptr<obs::RunReport> report_;
};

/// One point of the rpc performance comparison (Fig. 3): derived per-request
/// quantities as plotted by the paper.
struct RpcPoint {
    double throughput = 0.0;        ///< requests per msec
    double waiting_per_request = 0.0;  ///< msec (Little's law on P(waiting))
    double energy_per_request = 0.0;   ///< reward units
    double energy_rate = 0.0;          ///< reward units per msec
    // Simulation only: 90% CI half-widths (0 for the analytic solver).
    double throughput_hw = 0.0;
    double energy_rate_hw = 0.0;
};

/// Derives the paper's per-request quantities from the raw measure values
/// (indexed by models::rpc::MeasureIndex); half_widths may be empty.
[[nodiscard]] RpcPoint rpc_point_from(const std::vector<double>& values,
                                      const std::vector<double>& half_widths);

[[nodiscard]] RpcPoint rpc_markov_point(double shutdown_timeout, bool dpm);
/// \p pool (optional) parallelises the replications (bit-identical results).
[[nodiscard]] RpcPoint rpc_general_point(double shutdown_timeout, bool dpm,
                                         int replications, double horizon,
                                         std::uint64_t seed,
                                         exp::ThreadPool* pool = nullptr);
/// Fig. 5 validation: the general model with *exponential* distributions
/// substituted back in, simulated (30 runs, 90% CI in the paper).
[[nodiscard]] RpcPoint rpc_general_exp_point(double shutdown_timeout, bool dpm,
                                             int replications, double horizon,
                                             std::uint64_t seed,
                                             exp::ThreadPool* pool = nullptr);

/// One point of the streaming comparison (Fig. 4 / Fig. 6): the paper's four
/// derived metrics.
struct StreamingPoint {
    double energy_per_frame = 0.0;
    double loss = 0.0;     ///< buffer-full drops / generated frames
    double miss = 0.0;     ///< real-time violations / frame fetches
    double quality = 0.0;  ///< in-time deliveries / frame fetches
    double energy_per_frame_hw = 0.0;
};

/// Derives the four metrics from the raw measure values (indexed by
/// models::streaming::MeasureIndex); half_widths may be empty.
[[nodiscard]] StreamingPoint streaming_point_from(const std::vector<double>& values,
                                                  const std::vector<double>& half_widths);

[[nodiscard]] StreamingPoint streaming_markov_point(double awake_period, bool dpm);
/// \p pool (optional) parallelises the replications (bit-identical results).
[[nodiscard]] StreamingPoint streaming_general_point(double awake_period, bool dpm,
                                                     int replications, double horizon,
                                                     std::uint64_t seed,
                                                     exp::ThreadPool* pool = nullptr);

// Engine-based figure sweeps.  Each experiment's measures are the raw
// measure names of the model family (models::rpc::measures() /
// models::streaming::measures()); use rpc_point_from / streaming_point_from
// on a record's values to recover the plotted quantities.  All three cache
// the composed state space in figure_cache() and patch the swept rate per
// point (timeout <= 0 changes the structure — the shutdown becomes
// immediate — so those points compose from scratch, once, and are cached
// too).

/// Fig. 3 left: analytic sweep of the Markovian rpc model over axis
/// "timeout_ms".
[[nodiscard]] exp::Experiment rpc_markov_experiment(std::vector<double> timeouts,
                                                    bool dpm);

/// Fig. 3 right: simulated sweep of the general rpc model over axis
/// "timeout_ms"; per-point seeds come from the runner's (base_seed,
/// point_index) split and replications fan out on the sweep's pool.
[[nodiscard]] exp::Experiment rpc_general_experiment(std::vector<double> timeouts,
                                                     bool dpm, int replications,
                                                     double horizon);

/// Fig. 4: analytic sweep of the Markovian streaming model over axis
/// "awake_ms".
[[nodiscard]] exp::Experiment streaming_markov_experiment(std::vector<double> periods,
                                                          bool dpm);

/// Fig. 6: simulated sweep of the general streaming model over axis
/// "awake_ms".  Measures are the four derived metrics of StreamingPoint
/// (energy_per_frame with its CI half-width, then loss/miss/quality); the
/// per-point seed is pinned to 4200 + period so the printed figures match
/// the historical hand-rolled sweep.  Replications fan out on the sweep's
/// pool.
[[nodiscard]] exp::Experiment streaming_general_experiment(std::vector<double> periods,
                                                           bool dpm, int replications,
                                                           double horizon);

}  // namespace dpma::bench
