/// \file bench_battery_lifetime.cpp
/// The battery's verdict on DPM (Sect. 2's motivation, asked end-to-end):
/// sweep battery capacity x {NO-DPM, DPM} for the rpc server under the
/// kinetic battery model and compare the *simulated* DPM/NO-DPM lifetime
/// ratio against the ideal-battery (fluid) prediction — the steady-state
/// power ratio, which is what a mean-power analysis would promise.
///
/// Under KiBaM the DPM's sleep periods let bound charge flow back into the
/// available well while the NO-DPM server strands it, so the lifetime gap
/// must come out *wider* than the power gap.  Each capacity row prints its
/// own verdict and the program exits 1 (verdict=NOT-AMPLIFIED) when any row
/// fails — the battery_lifetime_smoke ctest greps for exactly that.
///
/// DPMA_BENCH_SCALE scales the replication count (0.2 in CI smoke runs).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "battery/coupling.hpp"
#include "battery/lifetime.hpp"
#include "bench/harness.hpp"
#include "ctmc/solve.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
    using namespace dpma;
    using namespace dpma::bench;
    ScopedObservation observation("battery_lifetime", argc, argv);

    const double scale = effort_scale();
    // Floor of 4: the amplification check is statistical, and 2 replications
    // per point leave the smallest capacity at the mercy of the seed.
    const int reps = std::max(4, static_cast<int>(std::lround(10.0 * scale)));

    std::printf("== battery lifetime: rpc server on a kinetic battery ==\n");
    std::printf("(%d replications per point, kibam c=0.5 k'=1e-3)\n", reps);

    battery::StudyOptions options;
    options.system = "rpc";
    options.battery.kind = battery::BatteryParams::Kind::Kibam;
    options.battery.kibam_c = 0.5;
    options.battery.kibam_rate = 1e-3;
    options.capacities = {2000.0, 5000.0, 10000.0};
    options.replications = reps;
    options.base_seed = 42;

    const auto started = std::chrono::steady_clock::now();
    const exp::ResultSet results = battery::run_lifetime_study(options);
    observation.record(results);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;

    // The ideal-battery prediction of the lifetime gap: lifetimes scale as
    // capacity / E[power], so the ratio is the steady-power ratio — exactly
    // what the fluid column of an *ideal* study would report, recovered here
    // from the Markovian models directly (capacity-independent).
    const auto measures = models::rpc::measures();
    const auto steady_power = [&measures](bool dpm) {
        const adl::ComposedModel model =
            models::rpc::compose(models::rpc::markovian(10.0, dpm));
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const std::vector<double> power = battery::tangible_power(
            markov, model, measures[models::rpc::kEnergyRate]);
        const std::vector<double> pi = ctmc::steady_state(markov.chain);
        double mean = 0.0;
        for (std::size_t s = 0; s < pi.size(); ++s) mean += pi[s] * power[s];
        return mean;
    };
    const double ideal_ratio = steady_power(false) / steady_power(true);

    Table table("rpc / kibam: simulated lifetime gap vs the fluid prediction",
                {"capacity", "life_nodpm", "life_dpm", "sim_ratio", "ideal_ratio",
                 "censored"});
    bool amplified = true;
    for (std::size_t i = 0; i < options.capacities.size(); ++i) {
        const std::size_t nodpm = 2 * i;      // axis order: capacity, then dpm
        const std::size_t dpm = 2 * i + 1;
        const double life_nodpm = results.value(nodpm, "lifetime");
        const double life_dpm = results.value(dpm, "lifetime");
        const double censored =
            results.value(nodpm, "censored") + results.value(dpm, "censored");
        const double sim_ratio = life_dpm / life_nodpm;
        table.add_row({options.capacities[i], life_nodpm, life_dpm, sim_ratio,
                       ideal_ratio, censored});
        if (!(sim_ratio > ideal_ratio) || censored > 0.0) {
            amplified = false;
        }
    }
    table.print();

    std::printf("\nengine: %zu points x %d reps, jobs=%zu, %.3fs\n", results.size(),
                reps, exp::default_jobs(), elapsed.count());
    std::printf("verdict=%s expected=AMPLIFIED\n",
                amplified ? "AMPLIFIED" : "NOT-AMPLIFIED");
    return amplified ? 0 : 1;
}
