/// \file bench_sect3_noninterference.cpp
/// Reproduces the functional-phase results of Sect. 3:
///  * the simplified rpc system *fails* the noninterference check and the
///    checker emits the TwoTowers-style distinguishing formula of Sect. 3.1
///    (an rpc is sent and no result can ever be delivered);
///  * the revised rpc system passes;
///  * the streaming system passes (Sect. 3.2).

#include <chrono>
#include <cstdio>

#include "bench/harness.hpp"
#include "bisim/hml.hpp"
#include "models/rpc.hpp"
#include "models/streaming.hpp"
#include "noninterference/noninterference.hpp"

namespace {

using namespace dpma;
using Clock = std::chrono::steady_clock;

void report(const char* name, const adl::ComposedModel& model,
            const std::vector<std::string>& high, bool expect_pass) {
    const auto t0 = Clock::now();
    const auto result = noninterference::check_dpm_transparency(model, high, "C");
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    std::printf("%-28s states=%6zu  verdict=%-15s expected=%-15s  [%7.1f ms]\n",
                name, model.graph.num_states(),
                result.noninterfering ? "NONINTERFERING" : "INTERFERING",
                expect_pass ? "NONINTERFERING" : "INTERFERING", ms);
    if (!result.noninterfering) {
        std::printf("  distinguishing formula (cf. Sect. 3.1):\n%s\n\n",
                    bisim::to_two_towers(result.formula).c_str());
    }
}

}  // namespace

int main(int argc, char** argv) {
    const dpma::bench::ScopedObservation observation("sect3_noninterference", argc, argv);
    std::printf("== Sect. 3: noninterference analysis of the DPM ==\n\n");

    report("rpc simplified (2.3)",
           models::rpc::compose(models::rpc::simplified_functional()),
           models::rpc::high_action_labels(), /*expect_pass=*/false);

    report("rpc revised (3.1)",
           models::rpc::compose(models::rpc::revised_functional()),
           models::rpc::high_action_labels(), /*expect_pass=*/true);

    report("streaming, buffers=3 (3.2)",
           models::streaming::compose(models::streaming::functional(3)),
           models::streaming::high_action_labels(), /*expect_pass=*/true);

    // The buffers=5 system is the expensive case; reduced-effort runs
    // (DPMA_BENCH_SCALE < 1, e.g. the perf_smoke ctest) skip it.
    if (bench::effort_scale() >= 1.0) {
        report("streaming, buffers=5 (3.2)",
               models::streaming::compose(models::streaming::functional(5)),
               models::streaming::high_action_labels(), /*expect_pass=*/true);
    } else {
        std::printf("streaming, buffers=5 (3.2)   skipped (DPMA_BENCH_SCALE < 1)\n");
    }

    // Why weak bisimulation and not trace equivalence?  The trace-based
    // noninterference property (SNNI, Focardi–Gorrieri [7]) is blind to the
    // simplified system's defect: the DPM-induced deadlock removes no trace,
    // it only removes *futures*.  The comparison below demonstrates it.
    std::printf("\n== bisimulation-based vs trace-based noninterference ==\n");
    const adl::ComposedModel simplified =
        models::rpc::compose(models::rpc::simplified_functional());
    const auto bisim_verdict = noninterference::check_dpm_transparency(
        simplified, models::rpc::high_action_labels(), "C");
    const auto trace_verdict = noninterference::check_dpm_trace_transparency(
        simplified, models::rpc::high_action_labels(), "C");
    std::printf(
        "simplified rpc: weak-bisimulation check: %s ; weak-trace check: %s\n"
        "(the deadlock the DPM introduces is a branching-time phenomenon —\n"
        " invisible to traces, caught by the equivalence the paper uses)\n",
        bisim_verdict.noninterfering ? "NONINTERFERING" : "INTERFERING",
        trace_verdict.noninterfering ? "NONINTERFERING" : "INTERFERING");

    return 0;
}
