/// \file bench_micro.cpp
/// Google-benchmark microbenchmarks of the analysis engines themselves:
/// composition, weak-bisimulation checking, CTMC construction + solution,
/// and GSMP simulation throughput.  These are ours (not a paper figure) and
/// guard against performance regressions of the toolchain.

#include <benchmark/benchmark.h>

#include "analysis/flow/analyze.hpp"
#include "bisim/equivalence.hpp"
#include "bisim/partition.hpp"
#include "ctmc/ctmc.hpp"
#include "lts/ops.hpp"
#include "ctmc/solve.hpp"
#include "models/rpc.hpp"
#include "models/specs.hpp"
#include "models/streaming.hpp"
#include "noninterference/noninterference.hpp"
#include "obs/trace.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;

void BM_ComposeRpcMarkov(benchmark::State& state) {
    const auto config = models::rpc::markovian(5.0, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(models::rpc::compose(config));
    }
}
BENCHMARK(BM_ComposeRpcMarkov);

void BM_ComposeStreamingMarkov(benchmark::State& state) {
    const auto config = models::streaming::markovian(100.0, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(models::streaming::compose(config));
    }
    state.SetItemsProcessed(state.iterations() *
                            models::streaming::compose(config).graph.num_states());
}
BENCHMARK(BM_ComposeStreamingMarkov);

void BM_NoninterferenceRpcRevised(benchmark::State& state) {
    const auto model = models::rpc::compose(models::rpc::revised_functional());
    for (auto _ : state) {
        benchmark::DoNotOptimize(noninterference::check_dpm_transparency(
            model, models::rpc::high_action_labels(), "C"));
    }
}
BENCHMARK(BM_NoninterferenceRpcRevised);

/// The whole dataflow engine (parse + lint + CFGs + intervals + abstract
/// composition + ergodicity) on the largest shipped spec.  This is the cost
/// a `--precheck` adds before composition — it must stay far below the
/// composition+check it can save.
void BM_FlowAnalyzeStreaming(benchmark::State& state) {
    const std::string_view spec = models::streaming_markov_spec();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis::flow::analyze_text(spec, "streaming_markov.aem"));
    }
}
BENCHMARK(BM_FlowAnalyzeStreaming);

void BM_NoninterferenceStreaming(benchmark::State& state) {
    const auto model =
        models::streaming::compose(models::streaming::functional(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(noninterference::check_dpm_transparency(
            model, models::streaming::high_action_labels(), "C"));
    }
    state.SetLabel(std::to_string(model.graph.num_states()) + " states");
}
BENCHMARK(BM_NoninterferenceStreaming)->Arg(2)->Arg(3);

void BM_BuildMarkovStreaming(benchmark::State& state) {
    const auto model =
        models::streaming::compose(models::streaming::markovian(100.0, true));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctmc::build_markov(model));
    }
}
BENCHMARK(BM_BuildMarkovStreaming);

void BM_SteadyStateGth(benchmark::State& state) {
    const auto model = models::rpc::compose(models::rpc::markovian(5.0, true));
    const auto markov = ctmc::build_markov(model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctmc::steady_state_gth(markov.chain));
    }
    state.SetLabel(std::to_string(markov.chain.num_states()) + " states");
}
BENCHMARK(BM_SteadyStateGth);

void BM_SteadyStateGaussSeidelStreaming(benchmark::State& state) {
    const auto model =
        models::streaming::compose(models::streaming::markovian(100.0, true));
    const auto markov = ctmc::build_markov(model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctmc::steady_state_gauss_seidel(markov.chain));
    }
    state.SetLabel(std::to_string(markov.chain.num_states()) + " states");
}
BENCHMARK(BM_SteadyStateGaussSeidelStreaming);

void BM_SimulateRpcGeneral(benchmark::State& state) {
    const auto model = models::rpc::compose(models::rpc::general(5.0, true));
    const sim::Simulator simulator(model, models::rpc::measures());
    sim::SimOptions options;
    options.horizon = 5000.0;
    std::uint64_t seed = 1;
    std::uint64_t events = 0;
    for (auto _ : state) {
        options.seed = seed++;
        const auto run = simulator.run(options);
        events += run.events;
        benchmark::DoNotOptimize(run);
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("items = simulated events");
}
BENCHMARK(BM_SimulateRpcGeneral);

// Scheduler-path throughput triplet (items/sec = simulated events/sec): the
// all-exponential model through the clock-free Markov fast path, the same
// model forced through the general clocked scheduler, and an
// immediate-heavy model exercising the compiled immediate tables.

void BM_SimulateMarkovFastPath(benchmark::State& state) {
    const auto model = models::rpc::compose(models::rpc::markovian(5.0, true));
    const sim::Simulator simulator(model, models::rpc::measures());
    sim::SimOptions options;
    options.horizon = 5000.0;
    std::uint64_t seed = 1;
    std::uint64_t events = 0;
    for (auto _ : state) {
        options.seed = seed++;
        const auto run = simulator.run(options);
        events += run.events;
        benchmark::DoNotOptimize(run);
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("items = simulated events (fast path)");
}
BENCHMARK(BM_SimulateMarkovFastPath);

void BM_SimulateMarkovClocked(benchmark::State& state) {
    const auto model = models::rpc::compose(models::rpc::markovian(5.0, true));
    const sim::Simulator simulator(model, models::rpc::measures());
    sim::SimOptions options;
    options.horizon = 5000.0;
    options.markov_fast_path = false;
    std::uint64_t seed = 1;
    std::uint64_t events = 0;
    for (auto _ : state) {
        options.seed = seed++;
        const auto run = simulator.run(options);
        events += run.events;
        benchmark::DoNotOptimize(run);
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("items = simulated events (clocked path)");
}
BENCHMARK(BM_SimulateMarkovClocked);

void BM_SimulateImmediateHeavy(benchmark::State& state) {
    // Immediate shutdown (timeout 0): every idle period fires an immediate
    // transition, so the run alternates timed and immediate events.
    const auto model = models::rpc::compose(models::rpc::markovian(0.0, true));
    const sim::Simulator simulator(model, models::rpc::measures());
    sim::SimOptions options;
    options.horizon = 5000.0;
    std::uint64_t seed = 1;
    std::uint64_t events = 0;
    for (auto _ : state) {
        options.seed = seed++;
        const auto run = simulator.run(options);
        events += run.events;
        benchmark::DoNotOptimize(run);
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("items = simulated events (immediate-heavy)");
}
BENCHMARK(BM_SimulateImmediateHeavy);

// Instrumentation overhead guards: a span with tracing disabled must cost on
// the order of a single atomic load, and a solve with spans compiled in but
// tracing off must not be measurably slower than the same solve was before
// instrumentation (the tests assert a bound on the per-span cost).

void BM_SpanDisabled(benchmark::State& state) {
    obs::set_tracing(false);
    for (auto _ : state) {
        DPMA_SPAN("bench.disabled", "bench");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
    obs::clear_trace();
    obs::set_tracing(true);
    for (auto _ : state) {
        DPMA_SPAN("bench.enabled", "bench");
        benchmark::ClobberMemory();
    }
    obs::set_tracing(false);
    obs::clear_trace();
}
BENCHMARK(BM_SpanEnabled);

void BM_SolveInstrumentedOff(benchmark::State& state) {
    obs::set_tracing(false);
    const auto model = models::rpc::compose(models::rpc::markovian(5.0, true));
    const auto markov = ctmc::build_markov(model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctmc::steady_state(markov.chain));
    }
    state.SetLabel("spans compiled in, tracing off");
}
BENCHMARK(BM_SolveInstrumentedOff);

void BM_WeakBisimQuotient(benchmark::State& state) {
    const auto model = models::rpc::compose(models::rpc::revised_functional());
    const lts::Lts hidden = lts::hide(
        model.graph,
        [&] {
            lts::ActionSet set;
            for (auto a : adl::actions_of_instance(model, "DPM")) set.insert(a);
            return set;
        }());
    for (auto _ : state) {
        benchmark::DoNotOptimize(bisim::weakly_bisimilar(hidden, hidden));
    }
}
BENCHMARK(BM_WeakBisimQuotient);

// Hot-path guards for the CSR/saturation/refinement overhaul.

/// 10k-state tau-dense chain: 100 clusters of 100 mutually-tau states,
/// chained by tau and visible edges.  The weak-bisimulation prep pipeline
/// (SCC collapse + saturation) must digest it without materialising
/// per-state closure vectors — the pre-CSR saturation held O(n^2) state ids
/// for inputs of this shape.
lts::Lts tau_dense_chain(std::size_t clusters, std::size_t cluster_size) {
    lts::Lts m;
    const lts::ActionId tau = m.actions()->tau();
    const lts::ActionId step = m.action("step");
    const std::size_t n = clusters * cluster_size;
    for (std::size_t s = 0; s < n; ++s) m.add_state();
    for (std::size_t c = 0; c < clusters; ++c) {
        const auto base = static_cast<lts::StateId>(c * cluster_size);
        for (std::size_t i = 0; i < cluster_size; ++i) {
            // Tau ring: the whole cluster is one tau-SCC.
            m.add_transition(base + i, tau,
                             base + static_cast<lts::StateId>((i + 1) % cluster_size));
        }
        if (c + 1 < clusters) {
            const auto next = static_cast<lts::StateId>((c + 1) * cluster_size);
            m.add_transition(base, tau, next);       // silent drift down the chain
            m.add_transition(base + 1, step, next);  // observable progress
        }
    }
    m.set_initial(0);
    return m;
}

void BM_SaturateTauDenseChain(benchmark::State& state) {
    const lts::Lts chain = tau_dense_chain(100, 100);
    std::size_t weak_transitions = 0;
    for (auto _ : state) {
        const lts::TauCollapseResult collapsed = lts::collapse_tau_sccs(chain);
        const lts::Lts sat = lts::saturate(collapsed.collapsed);
        weak_transitions = sat.num_transitions();
        benchmark::DoNotOptimize(sat);
    }
    state.SetLabel(std::to_string(chain.num_states()) + " states -> " +
                   std::to_string(weak_transitions) + " weak transitions");
}
BENCHMARK(BM_SaturateTauDenseChain);

void BM_SaturateNoninterferenceView(benchmark::State& state) {
    // The saturation input the Sect. 3 checks actually produce: the revised
    // rpc system with everything but the low interface hidden.
    const auto model = models::rpc::compose(models::rpc::revised_functional());
    lts::ActionSet hide;
    for (auto a : adl::actions_of_instance(model, "DPM")) hide.insert(a);
    const lts::Lts hidden =
        lts::reachable_part(lts::hide(model.graph, hide));
    const lts::TauCollapseResult collapsed = lts::collapse_tau_sccs(hidden);
    for (auto _ : state) {
        benchmark::DoNotOptimize(lts::saturate(collapsed.collapsed));
    }
    state.SetLabel(std::to_string(collapsed.collapsed.num_states()) + " states");
}
BENCHMARK(BM_SaturateNoninterferenceView);

void BM_RefineStrongSaturated(benchmark::State& state) {
    const auto model = models::rpc::compose(models::rpc::revised_functional());
    lts::ActionSet hide;
    for (auto a : adl::actions_of_instance(model, "DPM")) hide.insert(a);
    const lts::Lts sat = lts::saturate(lts::collapse_tau_sccs(
        lts::reachable_part(lts::hide(model.graph, hide))).collapsed);
    for (auto _ : state) {
        benchmark::DoNotOptimize(bisim::refine_strong(sat));
    }
    state.SetLabel(std::to_string(sat.num_states()) + " states, " +
                   std::to_string(sat.num_transitions()) + " transitions");
}
BENCHMARK(BM_RefineStrongSaturated);

void BM_CsrFreeze(benchmark::State& state) {
    const auto model =
        models::streaming::compose(models::streaming::functional(5));
    for (auto _ : state) {
        lts::Lts copy = model.graph;  // copies are thawed; freeze from scratch
        copy.freeze();
        benchmark::DoNotOptimize(copy);
    }
    state.SetLabel(std::to_string(model.graph.num_transitions()) + " transitions");
}
BENCHMARK(BM_CsrFreeze);

}  // namespace

BENCHMARK_MAIN();
