/// \file bench_micro.cpp
/// Google-benchmark microbenchmarks of the analysis engines themselves:
/// composition, weak-bisimulation checking, CTMC construction + solution,
/// and GSMP simulation throughput.  These are ours (not a paper figure) and
/// guard against performance regressions of the toolchain.

#include <benchmark/benchmark.h>

#include "bisim/equivalence.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/solve.hpp"
#include "models/rpc.hpp"
#include "models/streaming.hpp"
#include "noninterference/noninterference.hpp"
#include "obs/trace.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;

void BM_ComposeRpcMarkov(benchmark::State& state) {
    const auto config = models::rpc::markovian(5.0, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(models::rpc::compose(config));
    }
}
BENCHMARK(BM_ComposeRpcMarkov);

void BM_ComposeStreamingMarkov(benchmark::State& state) {
    const auto config = models::streaming::markovian(100.0, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(models::streaming::compose(config));
    }
    state.SetItemsProcessed(state.iterations() *
                            models::streaming::compose(config).graph.num_states());
}
BENCHMARK(BM_ComposeStreamingMarkov);

void BM_NoninterferenceRpcRevised(benchmark::State& state) {
    const auto model = models::rpc::compose(models::rpc::revised_functional());
    for (auto _ : state) {
        benchmark::DoNotOptimize(noninterference::check_dpm_transparency(
            model, models::rpc::high_action_labels(), "C"));
    }
}
BENCHMARK(BM_NoninterferenceRpcRevised);

void BM_NoninterferenceStreaming(benchmark::State& state) {
    const auto model =
        models::streaming::compose(models::streaming::functional(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(noninterference::check_dpm_transparency(
            model, models::streaming::high_action_labels(), "C"));
    }
    state.SetLabel(std::to_string(model.graph.num_states()) + " states");
}
BENCHMARK(BM_NoninterferenceStreaming)->Arg(2)->Arg(3);

void BM_BuildMarkovStreaming(benchmark::State& state) {
    const auto model =
        models::streaming::compose(models::streaming::markovian(100.0, true));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctmc::build_markov(model));
    }
}
BENCHMARK(BM_BuildMarkovStreaming);

void BM_SteadyStateGth(benchmark::State& state) {
    const auto model = models::rpc::compose(models::rpc::markovian(5.0, true));
    const auto markov = ctmc::build_markov(model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctmc::steady_state_gth(markov.chain));
    }
    state.SetLabel(std::to_string(markov.chain.num_states()) + " states");
}
BENCHMARK(BM_SteadyStateGth);

void BM_SteadyStateGaussSeidelStreaming(benchmark::State& state) {
    const auto model =
        models::streaming::compose(models::streaming::markovian(100.0, true));
    const auto markov = ctmc::build_markov(model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctmc::steady_state_gauss_seidel(markov.chain));
    }
    state.SetLabel(std::to_string(markov.chain.num_states()) + " states");
}
BENCHMARK(BM_SteadyStateGaussSeidelStreaming);

void BM_SimulateRpcGeneral(benchmark::State& state) {
    const auto model = models::rpc::compose(models::rpc::general(5.0, true));
    const sim::Simulator simulator(model, models::rpc::measures());
    sim::SimOptions options;
    options.horizon = 5000.0;
    std::uint64_t seed = 1;
    std::uint64_t events = 0;
    for (auto _ : state) {
        options.seed = seed++;
        const auto run = simulator.run(options);
        events += run.events;
        benchmark::DoNotOptimize(run);
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
    state.SetLabel("items = simulated events");
}
BENCHMARK(BM_SimulateRpcGeneral);

// Instrumentation overhead guards: a span with tracing disabled must cost on
// the order of a single atomic load, and a solve with spans compiled in but
// tracing off must not be measurably slower than the same solve was before
// instrumentation (the tests assert a bound on the per-span cost).

void BM_SpanDisabled(benchmark::State& state) {
    obs::set_tracing(false);
    for (auto _ : state) {
        DPMA_SPAN("bench.disabled", "bench");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
    obs::clear_trace();
    obs::set_tracing(true);
    for (auto _ : state) {
        DPMA_SPAN("bench.enabled", "bench");
        benchmark::ClobberMemory();
    }
    obs::set_tracing(false);
    obs::clear_trace();
}
BENCHMARK(BM_SpanEnabled);

void BM_SolveInstrumentedOff(benchmark::State& state) {
    obs::set_tracing(false);
    const auto model = models::rpc::compose(models::rpc::markovian(5.0, true));
    const auto markov = ctmc::build_markov(model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctmc::steady_state(markov.chain));
    }
    state.SetLabel("spans compiled in, tracing off");
}
BENCHMARK(BM_SolveInstrumentedOff);

void BM_WeakBisimQuotient(benchmark::State& state) {
    const auto model = models::rpc::compose(models::rpc::revised_functional());
    const lts::Lts hidden = lts::hide(
        model.graph,
        [&] {
            lts::ActionSet set;
            for (auto a : adl::actions_of_instance(model, "DPM")) set.insert(a);
            return set;
        }());
    for (auto _ : state) {
        benchmark::DoNotOptimize(bisim::weakly_bisimilar(hidden, hidden));
    }
}
BENCHMARK(BM_WeakBisimQuotient);

}  // namespace

BENCHMARK_MAIN();
